"""Delivery layer: three interchangeable channel fidelities.

Each transport implements the same two verbs used by the simulator:

* ``write(sender, receiver, message, size_hint)`` — executed conceptually
  inside the *sending* enclave: seal the value for the receiver, return
  the :class:`WireMessage` the OS layer gets to handle;
* ``read(receiver, wire)`` — executed inside the *receiving* enclave:
  verify integrity (P2), program binding (P1), freshness (P6); raise on
  any failure so the engine records an omission instead.

``FullTransport`` runs the real Fig. 4 channels.  ``ModeledTransport``
keeps the identical accept/reject semantics with O(1) integer bookkeeping
per message (flat per-node counter arrays), which is what lets the scaling
benchmarks reach N = 2^10.  ``PlainTransport`` is the no-security mode for
strawman attack demonstrations: it verifies nothing.
"""

from __future__ import annotations

from array import array
from dataclasses import replace
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.channel.peer_channel import (
    ChannelTable,
    Envelope,
    SecureChannel,
    WireMessage,
    modeled_wire_size,
)
from repro.common.config import ChannelSecurity
from repro.common.errors import IntegrityError, ProtocolError, ReplayError
from repro.common.serialization import encode
from repro.common.types import NodeId, ProtocolMessage
from repro.crypto.dh import DhGroup, MODP_2048
from repro.sgx.enclave import Enclave


class Transport:
    """Interface shared by the three fidelities."""

    security: ChannelSecurity

    #: True when every wire of one fan-out carries the same ``size`` (the
    #: shared size hint).  FULL seals per receiver, so sizes may differ by
    #: a few bytes with the per-channel counter encoding.
    uniform_fanout_size = True

    def write(
        self,
        sender: NodeId,
        receiver: NodeId,
        message: ProtocolMessage,
        size_hint: Optional[int] = None,
    ) -> WireMessage:
        raise NotImplementedError

    def write_fanout(
        self,
        sender: NodeId,
        targets: Iterable[NodeId],
        message: ProtocolMessage,
        size_hint: Optional[int] = None,
    ) -> List[WireMessage]:
        """Write one multicast: encode/size once, one wire per target.

        Equivalent to calling :meth:`write` for each target in order
        (identical wires, counters and RNG consumption) — subclasses
        override it to share the per-multicast work across receivers.
        """
        return [
            self.write(sender, receiver, message, size_hint)
            for receiver in targets
        ]

    def read(self, receiver: NodeId, wire: WireMessage) -> ProtocolMessage:
        raise NotImplementedError

    def seal_envelope(
        self,
        sender: NodeId,
        receiver: NodeId,
        members: Optional[Sequence[ProtocolMessage]],
        *,
        count: Optional[int] = None,
        size: Optional[int] = None,
        encoded_bodies: Optional[Sequence[bytes]] = None,
    ) -> Envelope:
        """Seal one link's whole round of traffic as a single crossing.

        Non-FULL transports take the engine-computed physical ``size``
        (member bodies + one channel overhead) and an optional explicit
        ``count`` (the modeled ACK wave passes ``members=None``); FULL
        takes ``encoded_bodies`` and seals them with one AEAD call,
        reporting the per-wire-equivalent logical sizes in
        ``Envelope.member_sizes``.  Channel counters advance exactly as
        ``count`` per-message writes would, so counter state stays
        interchangeable with the per-wire path.
        """
        raise NotImplementedError

    def open_envelope(
        self, receiver: NodeId, envelope: Envelope
    ) -> Optional[Tuple[ProtocolMessage, ...]]:
        """Verify one envelope (routing, integrity, freshness) and return
        its members (None when the envelope carries no plaintext objects,
        e.g. the modeled ACK wave).  Raises like :meth:`read`."""
        raise NotImplementedError

    def seal_envelope_wave(
        self,
        sender: NodeId,
        receivers: Sequence[NodeId],
        members: Optional[Sequence[ProtocolMessage]],
        *,
        count: Optional[int] = None,
        size: Optional[int] = None,
    ) -> List[Envelope]:
        """Seal the *same* member set for many receivers in one pass.

        Equivalent to calling :meth:`seal_envelope` once per receiver in
        order (identical envelopes, counter advances and RNG draws) —
        subclasses override it to hoist the per-wave work (guard,
        measurement/row lookups, body encoding) out of the per-link
        loop.  This is the engine's common case: a round's coalesced
        traffic from one sender goes to its whole neighbour set.
        """
        return [
            self.seal_envelope(sender, receiver, members,
                               count=count, size=size)
            for receiver in receivers
        ]

    def open_envelope_wave(
        self, receiver: NodeId, envelopes: Sequence[Envelope]
    ) -> List[Optional[Tuple[ProtocolMessage, ...]]]:
        """Open one receiver's batch of envelopes in one pass.

        Equivalent to calling :meth:`open_envelope` per envelope in
        order, including raising on the first bad one."""
        return [self.open_envelope(receiver, env) for env in envelopes]

    def message_size(self, message: ProtocolMessage) -> int:
        """Wire size of ``message`` (computed once per multicast)."""
        return modeled_wire_size(message)

    def refresh_measurements(self) -> None:
        """Re-read enclave measurements after a session recycle.

        :meth:`SynchronousNetwork.begin_session_run` may install programs
        with a *different* measurement (a new execution re-attests from
        scratch); transports that cache measurements at construction
        override this to pick the new values up.  FULL and NONE read the
        live enclave state, so the default is a no-op.
        """


class FullTransport(Transport):
    """Real blinded channels between every pair of enclaves."""

    security = ChannelSecurity.FULL
    uniform_fanout_size = False

    def __init__(
        self, enclaves: Dict[NodeId, Enclave], group: DhGroup = MODP_2048
    ) -> None:
        self._enclaves = enclaves
        self._table = ChannelTable()
        ids = sorted(enclaves)
        for i, a in enumerate(ids):
            for b in ids[i + 1 :]:
                self._table.add(
                    SecureChannel.establish(
                        enclaves[a], enclaves[b], ChannelSecurity.FULL, group
                    )
                )

    def write(
        self,
        sender: NodeId,
        receiver: NodeId,
        message: ProtocolMessage,
        size_hint: Optional[int] = None,
    ) -> WireMessage:
        enclave = self._enclaves[sender]
        enclave.guard()
        channel = self._table.get(sender, receiver)
        wire = channel.write(
            sender, message, enclave.rdrand.rng(), enclave.measurement
        )
        wire.mtype = message.type
        return wire

    def write_fanout(
        self,
        sender: NodeId,
        targets: Iterable[NodeId],
        message: ProtocolMessage,
        size_hint: Optional[int] = None,
    ) -> List[WireMessage]:
        # Seal per receiver (each channel has its own key and counter) but
        # serialize the message body exactly once for the whole fan-out.
        enclave = self._enclaves[sender]
        enclave.guard()
        rng = enclave.rdrand.rng()
        measurement = enclave.measurement
        encoded = encode(message.to_tuple())
        table = self._table
        mtype = message.type
        wires: List[WireMessage] = []
        for receiver in targets:
            wire = table.get(sender, receiver).write(
                sender, message, rng, measurement, encoded_message=encoded
            )
            wire.mtype = mtype
            wires.append(wire)
        return wires

    def read(self, receiver: NodeId, wire: WireMessage) -> ProtocolMessage:
        enclave = self._enclaves[receiver]
        enclave.guard()
        channel = self._table.get(wire.sender, receiver)
        return channel.read(receiver, wire)

    def seal_envelope(
        self,
        sender: NodeId,
        receiver: NodeId,
        members: Optional[Sequence[ProtocolMessage]],
        *,
        count: Optional[int] = None,
        size: Optional[int] = None,
        encoded_bodies: Optional[Sequence[bytes]] = None,
    ) -> Envelope:
        if encoded_bodies is None:
            assert members is not None
            encoded_bodies = [encode(m.to_tuple()) for m in members]
        enclave = self._enclaves[sender]
        enclave.guard()
        channel = self._table.get(sender, receiver)
        return channel.write_envelope(
            sender, encoded_bodies, enclave.rdrand.rng(), enclave.measurement
        )

    def open_envelope(
        self, receiver: NodeId, envelope: Envelope
    ) -> Tuple[ProtocolMessage, ...]:
        enclave = self._enclaves[receiver]
        enclave.guard()
        channel = self._table.get(envelope.sender, receiver)
        return channel.read_envelope(receiver, envelope)

    def seal_envelope_wave(
        self,
        sender: NodeId,
        receivers: Sequence[NodeId],
        members: Optional[Sequence[ProtocolMessage]],
        *,
        count: Optional[int] = None,
        size: Optional[int] = None,
    ) -> List[Envelope]:
        # Encode every member body once for the whole wave (per-link
        # seal_envelope re-encodes per receiver); guard / RNG handle /
        # measurement hoist out too.  ``rdrand.rng()`` returns the stream
        # object without drawing, so one lookup is byte-identical to one
        # per receiver.
        assert members is not None
        encoded_bodies = [encode(m.to_tuple()) for m in members]
        enclave = self._enclaves[sender]
        enclave.guard()
        rng = enclave.rdrand.rng()
        measurement = enclave.measurement
        table = self._table
        return [
            table.get(sender, receiver).write_envelope(
                sender, encoded_bodies, rng, measurement
            )
            for receiver in receivers
        ]

    def open_envelope_wave(
        self, receiver: NodeId, envelopes: Sequence[Envelope]
    ) -> List[Optional[Tuple[ProtocolMessage, ...]]]:
        enclave = self._enclaves[receiver]
        enclave.guard()
        table = self._table
        return [
            table.get(envelope.sender, receiver).read_envelope(
                receiver, envelope
            )
            for envelope in envelopes
        ]


class ModeledTransport(Transport):
    """Size-accurate, semantics-accurate channel model.

    Per ordered pair ``(s, r)`` it tracks a send counter and the highest
    counter accepted by the reader; tampered flags and measurement
    mismatches reject exactly as the real channel does.
    """

    security = ChannelSecurity.MODELED

    def __init__(self, enclaves: Dict[NodeId, Enclave]) -> None:
        self._enclaves = enclaves
        n = max(enclaves) + 1 if enclaves else 0
        self._n = n
        self._measurements: List[Optional[bytes]] = [None] * n
        for node, enclave in enclaves.items():
            self._measurements[node] = enclave.measurement
        # _send[s][r]: messages written by s for r so far.
        # _accepted[r][s]: highest counter r accepted from s.
        self._send = [array("q", [0]) * n for _ in range(n)]
        self._accepted = [array("q", [0]) * n for _ in range(n)]

    def refresh_measurements(self) -> None:
        for node, enclave in self._enclaves.items():
            self._measurements[node] = enclave.measurement

    def write(
        self,
        sender: NodeId,
        receiver: NodeId,
        message: ProtocolMessage,
        size_hint: Optional[int] = None,
    ) -> WireMessage:
        self._enclaves[sender].guard()
        row = self._send[sender]
        row[receiver] += 1
        size = size_hint if size_hint is not None else modeled_wire_size(message)
        return WireMessage(
            sender=sender,
            receiver=receiver,
            counter=row[receiver],
            size=size,
            plain=message,
            plain_measurement=self._measurements[sender],
            mtype=message.type,
        )

    def write_fanout(
        self,
        sender: NodeId,
        targets: Iterable[NodeId],
        message: ProtocolMessage,
        size_hint: Optional[int] = None,
    ) -> List[WireMessage]:
        # One guard, one size, one measurement lookup, one counter-row
        # pass for the whole multicast; the frozen plaintext is shared.
        self._enclaves[sender].guard()
        row = self._send[sender]
        size = size_hint if size_hint is not None else modeled_wire_size(message)
        measurement = self._measurements[sender]
        mtype = message.type
        wires: List[WireMessage] = []
        append = wires.append
        for receiver in targets:
            counter = row[receiver] + 1
            row[receiver] = counter
            append(
                WireMessage(
                    sender, receiver, counter, size,
                    None, message, measurement, False, mtype,
                )
            )
        return wires

    def read(self, receiver: NodeId, wire: WireMessage) -> ProtocolMessage:
        self._enclaves[receiver].guard()
        if wire.receiver != receiver:
            raise IntegrityError("wire message routed to the wrong node")
        if wire.tampered:
            raise IntegrityError("MAC verification failed (modeled tampering)")
        sender = wire.sender
        expected = self._measurements[receiver]
        if wire.plain_measurement != expected:
            raise IntegrityError(
                "message bound to a different program (H(pi) mismatch)"
            )
        accepted = self._accepted[receiver]
        if wire.counter <= accepted[sender]:
            raise ReplayError(
                f"stale counter {wire.counter} from {sender} "
                f"(highest accepted {accepted[sender]})"
            )
        accepted[sender] = wire.counter
        if wire.plain is None:
            raise ProtocolError("modeled wire message without plaintext")
        return wire.plain

    def seal_envelope(
        self,
        sender: NodeId,
        receiver: NodeId,
        members: Optional[Sequence[ProtocolMessage]],
        *,
        count: Optional[int] = None,
        size: Optional[int] = None,
        encoded_bodies: Optional[Sequence[bytes]] = None,
    ) -> Envelope:
        # One guard and one counter-row update per link per wave; the
        # counter advances by the member count, so the per-pair counter
        # state stays identical to `count` sequential writes.
        self._enclaves[sender].guard()
        k = count if count is not None else len(members)
        row = self._send[sender]
        counter = row[receiver] + k
        row[receiver] = counter
        return Envelope(
            sender=sender,
            receiver=receiver,
            counter=counter,
            size=size if size is not None else 0,
            count=k,
            members=members,
            member_measurement=self._measurements[sender],
        )

    def open_envelope(
        self, receiver: NodeId, envelope: Envelope
    ) -> Optional[Tuple[ProtocolMessage, ...]]:
        self._enclaves[receiver].guard()
        if envelope.receiver != receiver:
            raise IntegrityError("envelope routed to the wrong node")
        expected = self._measurements[receiver]
        if envelope.member_measurement != expected:
            raise IntegrityError(
                "message bound to a different program (H(pi) mismatch)"
            )
        accepted = self._accepted[receiver]
        sender = envelope.sender
        if envelope.counter <= accepted[sender]:
            raise ReplayError(
                f"stale envelope counter {envelope.counter} from {sender} "
                f"(highest accepted {accepted[sender]})"
            )
        accepted[sender] = envelope.counter
        return envelope.members

    def seal_envelope_wave(
        self,
        sender: NodeId,
        receivers: Sequence[NodeId],
        members: Optional[Sequence[ProtocolMessage]],
        *,
        count: Optional[int] = None,
        size: Optional[int] = None,
    ) -> List[Envelope]:
        # One guard, one measurement lookup and one counter-row borrow
        # for the whole wave; counters advance per link exactly as the
        # per-receiver calls would.
        self._enclaves[sender].guard()
        k = count if count is not None else len(members)
        env_size = size if size is not None else 0
        row = self._send[sender]
        measurement = self._measurements[sender]
        envelopes: List[Envelope] = []
        append = envelopes.append
        for receiver in receivers:
            counter = row[receiver] + k
            row[receiver] = counter
            append(Envelope(
                sender=sender,
                receiver=receiver,
                counter=counter,
                size=env_size,
                count=k,
                members=members,
                member_measurement=measurement,
            ))
        return envelopes

    def open_envelope_wave(
        self, receiver: NodeId, envelopes: Sequence[Envelope]
    ) -> List[Optional[Tuple[ProtocolMessage, ...]]]:
        # Hoist the receiver-side guard, measurement and accepted-row
        # lookups; per-envelope checks (routing, binding, freshness) run
        # in order and raise exactly where the serial loop would.
        self._enclaves[receiver].guard()
        expected = self._measurements[receiver]
        accepted = self._accepted[receiver]
        out: List[Optional[Tuple[ProtocolMessage, ...]]] = []
        append = out.append
        for envelope in envelopes:
            if envelope.receiver != receiver:
                raise IntegrityError("envelope routed to the wrong node")
            if envelope.member_measurement != expected:
                raise IntegrityError(
                    "message bound to a different program (H(pi) mismatch)"
                )
            sender = envelope.sender
            if envelope.counter <= accepted[sender]:
                raise ReplayError(
                    f"stale envelope counter {envelope.counter} from "
                    f"{sender} (highest accepted {accepted[sender]})"
                )
            accepted[sender] = envelope.counter
            append(envelope.members)
        return out


class PlainTransport(Transport):
    """No security at all — Algorithm 1's world, for attack demos only."""

    security = ChannelSecurity.NONE

    def __init__(self, enclaves: Dict[NodeId, Enclave]) -> None:
        self._enclaves = enclaves
        self._counter = 0

    def write(
        self,
        sender: NodeId,
        receiver: NodeId,
        message: ProtocolMessage,
        size_hint: Optional[int] = None,
    ) -> WireMessage:
        self._enclaves[sender].guard()
        self._counter += 1
        size = size_hint if size_hint is not None else modeled_wire_size(message)
        return WireMessage(
            sender=sender,
            receiver=receiver,
            counter=self._counter,
            size=size,
            plain=message,
            mtype=message.type,
            opaque=False,  # no encryption: the OS reads everything
        )

    def write_fanout(
        self,
        sender: NodeId,
        targets: Iterable[NodeId],
        message: ProtocolMessage,
        size_hint: Optional[int] = None,
    ) -> List[WireMessage]:
        self._enclaves[sender].guard()
        size = size_hint if size_hint is not None else modeled_wire_size(message)
        mtype = message.type
        counter = self._counter
        wires: List[WireMessage] = []
        for receiver in targets:
            counter += 1
            wires.append(
                WireMessage(
                    sender=sender,
                    receiver=receiver,
                    counter=counter,
                    size=size,
                    plain=message,
                    mtype=mtype,
                    opaque=False,
                )
            )
        self._counter = counter
        return wires

    def read(self, receiver: NodeId, wire: WireMessage) -> ProtocolMessage:
        self._enclaves[receiver].guard()
        if wire.plain is None:
            raise ProtocolError("plain wire message without plaintext")
        # Forged and replayed messages sail through: this is the point.
        if wire.receiver != receiver:
            # Even the strawman's TCP layer delivers to the addressee.
            return replace(wire, receiver=receiver).plain
        return wire.plain

    def seal_envelope(
        self,
        sender: NodeId,
        receiver: NodeId,
        members: Optional[Sequence[ProtocolMessage]],
        *,
        count: Optional[int] = None,
        size: Optional[int] = None,
        encoded_bodies: Optional[Sequence[bytes]] = None,
    ) -> Envelope:
        self._enclaves[sender].guard()
        k = count if count is not None else len(members)
        self._counter += k
        return Envelope(
            sender=sender,
            receiver=receiver,
            counter=self._counter,
            size=size if size is not None else 0,
            count=k,
            members=members,
            opaque=False,
        )

    def open_envelope(
        self, receiver: NodeId, envelope: Envelope
    ) -> Optional[Tuple[ProtocolMessage, ...]]:
        self._enclaves[receiver].guard()
        # No verification of any kind: Algorithm 1's world.
        return envelope.members

    def seal_envelope_wave(
        self,
        sender: NodeId,
        receivers: Sequence[NodeId],
        members: Optional[Sequence[ProtocolMessage]],
        *,
        count: Optional[int] = None,
        size: Optional[int] = None,
    ) -> List[Envelope]:
        self._enclaves[sender].guard()
        k = count if count is not None else len(members)
        env_size = size if size is not None else 0
        counter = self._counter
        envelopes: List[Envelope] = []
        for receiver in receivers:
            counter += k
            envelopes.append(Envelope(
                sender=sender,
                receiver=receiver,
                counter=counter,
                size=env_size,
                count=k,
                members=members,
                opaque=False,
            ))
        self._counter = counter
        return envelopes

    def open_envelope_wave(
        self, receiver: NodeId, envelopes: Sequence[Envelope]
    ) -> List[Optional[Tuple[ProtocolMessage, ...]]]:
        self._enclaves[receiver].guard()
        return [envelope.members for envelope in envelopes]
