"""Network topologies: full mesh (assumption S5) and its relaxation.

The paper's model assumes every peer is directly connected to every other
(S5), and notes in Appendix G that a sparse expander or random graph with
flooding suffices in practice.  Both are available here; the simulator
routes a multicast only to a node's topology neighbours, so running ERB on
an expander exercises exactly that relaxation (tests assert connectivity
so the flooding argument applies).

The full mesh is stored *implicitly*: per-node neighbour sets materialize
lazily on first query.  Dense protocols touch every node's neighbours and
pay the same O(N²) as an eager table, but sample-based protocols (pb-erb)
only ever draw O(log N) views via :meth:`Topology.sample_view`, so a
N=16384 mesh costs O(1) memory instead of gigabytes.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

from repro.common.errors import ConfigurationError
from repro.common.rng import DeterministicRNG
from repro.common.types import NodeId


class Topology:
    """An undirected connectivity graph over node ids ``0..n-1``."""

    def __init__(
        self,
        n: int,
        adjacency: Dict[NodeId, FrozenSet[NodeId]],
        _implicit_full_mesh: bool = False,
    ) -> None:
        self.n = n
        self._adjacency = adjacency
        self._implicit = _implicit_full_mesh
        self._everyone: Optional[FrozenSet[NodeId]] = None
        self._full_mesh: Optional[bool] = True if _implicit_full_mesh else None
        self._sorted_peers: Dict[NodeId, Tuple[NodeId, ...]] = {}

    # ---- constructors --------------------------------------------------
    @staticmethod
    def full_mesh(n: int) -> "Topology":
        """Every peer connected to every other (model assumption S5)."""
        return Topology(n, {}, _implicit_full_mesh=True)

    @staticmethod
    def random_regular(n: int, degree: int, rng: DeterministicRNG) -> "Topology":
        """A random ``degree``-regular-ish graph (Appendix G relaxation).

        Built by superposing ``degree // 2`` uniformly random Hamiltonian
        cycles — a classic expander construction: the union of a few random
        cycles is an expander with high probability.  Every node ends up
        with degree between ``degree`` and ``degree`` + O(collisions).
        """
        if degree < 2 or degree % 2 != 0:
            raise ConfigurationError("degree must be an even integer >= 2")
        if n < 3:
            raise ConfigurationError("random_regular needs n >= 3")
        neighbours: Dict[NodeId, set] = {node: set() for node in range(n)}
        for _ in range(degree // 2):
            order = list(range(n))
            rng.shuffle(order)
            for i, node in enumerate(order):
                nxt = order[(i + 1) % n]
                neighbours[node].add(nxt)
                neighbours[nxt].add(node)
        return Topology(
            n, {node: frozenset(peers) for node, peers in neighbours.items()}
        )

    # ---- queries --------------------------------------------------------
    def neighbours(self, node: NodeId) -> FrozenSet[NodeId]:
        if self._implicit:
            cached = self._adjacency.get(node)
            if cached is None:
                if self._everyone is None:
                    self._everyone = frozenset(range(self.n))
                cached = self._everyone - {node}
                self._adjacency[node] = cached
            return cached
        return self._adjacency[node]

    def are_connected(self, a: NodeId, b: NodeId) -> bool:
        if self._implicit:
            return a != b and 0 <= a < self.n and 0 <= b < self.n
        return b in self._adjacency[a]

    def degree(self, node: NodeId) -> int:
        if self._implicit:
            return self.n - 1
        return len(self._adjacency[node])

    @property
    def is_full_mesh(self) -> bool:
        # Adjacency is immutable after construction, so the O(n) scan is
        # paid once — sample_view consults this on every gossip fan-out.
        if self._full_mesh is None:
            self._full_mesh = all(
                len(self._adjacency[node]) == self.n - 1
                for node in range(self.n)
            )
        return self._full_mesh

    def sample_view(self, node: NodeId, size: int, rng) -> Tuple[NodeId, ...]:
        """``size`` distinct neighbours of ``node`` sampled uniformly.

        The partial-view primitive of sample-based probabilistic
        broadcast: each gossip/echo fan-out targets an independent
        uniform sample instead of the whole mesh, taking per-broadcast
        traffic from O(N²) to O(N·size).  Runs in O(size) via a partial
        Fisher-Yates over an *implicit* pool — on a full mesh the pool
        ``0..n-2`` maps to peer ids without materializing the O(N)
        neighbour list, so sampling at N=16384 never touches an O(N)
        structure.  ``rng`` is any source with ``randrange`` (the
        enclave's RDRAND stream in protocol code, so views are
        deterministic per seed and hidden from the OS).
        """
        if size < 0:
            raise ConfigurationError("sample size must be non-negative")
        if self.is_full_mesh:
            pool_size = self.n - 1
            pool = None
        else:
            pool = self._sorted_peers.get(node)
            if pool is None:
                pool = tuple(sorted(self._adjacency[node]))
                self._sorted_peers[node] = pool
            pool_size = len(pool)
        if size >= pool_size:
            if pool is None:
                return tuple(
                    i if i < node else i + 1 for i in range(pool_size)
                )
            return pool
        # Partial Fisher-Yates with a sparse swap map: index j stands for
        # itself unless an earlier draw displaced it.
        swaps: Dict[int, int] = {}
        picks: List[int] = []
        limit = pool_size
        for _ in range(size):
            j = rng.randrange(limit)
            limit -= 1
            picks.append(swaps.get(j, j))
            swaps[j] = swaps.get(limit, limit)
        if pool is None:
            return tuple(i if i < node else i + 1 for i in picks)
        return tuple(pool[i] for i in picks)

    def is_connected(self) -> bool:
        """BFS connectivity check (flooding reaches everyone iff True)."""
        if self.n == 0:
            return True
        if self._implicit:
            return True
        seen = {0}
        frontier: List[NodeId] = [0]
        while frontier:
            node = frontier.pop()
            for peer in self._adjacency[node]:
                if peer not in seen:
                    seen.add(peer)
                    frontier.append(peer)
        return len(seen) == self.n

    def edges(self) -> Iterable[tuple]:
        for node in range(self.n):
            for peer in self.neighbours(node):
                if node < peer:
                    yield (node, peer)
