"""Network topologies: full mesh (assumption S5) and its relaxation.

The paper's model assumes every peer is directly connected to every other
(S5), and notes in Appendix G that a sparse expander or random graph with
flooding suffices in practice.  Both are available here; the simulator
routes a multicast only to a node's topology neighbours, so running ERB on
an expander exercises exactly that relaxation (tests assert connectivity
so the flooding argument applies).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List

from repro.common.errors import ConfigurationError
from repro.common.rng import DeterministicRNG
from repro.common.types import NodeId


class Topology:
    """An undirected connectivity graph over node ids ``0..n-1``."""

    def __init__(self, n: int, adjacency: Dict[NodeId, FrozenSet[NodeId]]) -> None:
        self.n = n
        self._adjacency = adjacency

    # ---- constructors --------------------------------------------------
    @staticmethod
    def full_mesh(n: int) -> "Topology":
        """Every peer connected to every other (model assumption S5)."""
        everyone = frozenset(range(n))
        return Topology(
            n, {node: everyone - {node} for node in range(n)}
        )

    @staticmethod
    def random_regular(n: int, degree: int, rng: DeterministicRNG) -> "Topology":
        """A random ``degree``-regular-ish graph (Appendix G relaxation).

        Built by superposing ``degree // 2`` uniformly random Hamiltonian
        cycles — a classic expander construction: the union of a few random
        cycles is an expander with high probability.  Every node ends up
        with degree between ``degree`` and ``degree`` + O(collisions).
        """
        if degree < 2 or degree % 2 != 0:
            raise ConfigurationError("degree must be an even integer >= 2")
        if n < 3:
            raise ConfigurationError("random_regular needs n >= 3")
        neighbours: Dict[NodeId, set] = {node: set() for node in range(n)}
        for _ in range(degree // 2):
            order = list(range(n))
            rng.shuffle(order)
            for i, node in enumerate(order):
                nxt = order[(i + 1) % n]
                neighbours[node].add(nxt)
                neighbours[nxt].add(node)
        return Topology(
            n, {node: frozenset(peers) for node, peers in neighbours.items()}
        )

    # ---- queries --------------------------------------------------------
    def neighbours(self, node: NodeId) -> FrozenSet[NodeId]:
        return self._adjacency[node]

    def are_connected(self, a: NodeId, b: NodeId) -> bool:
        return b in self._adjacency[a]

    def degree(self, node: NodeId) -> int:
        return len(self._adjacency[node])

    @property
    def is_full_mesh(self) -> bool:
        return all(
            len(self._adjacency[node]) == self.n - 1 for node in range(self.n)
        )

    def is_connected(self) -> bool:
        """BFS connectivity check (flooding reaches everyone iff True)."""
        if self.n == 0:
            return True
        seen = {0}
        frontier: List[NodeId] = [0]
        while frontier:
            node = frontier.pop()
            for peer in self._adjacency[node]:
                if peer not in seen:
                    seen.add(peer)
                    frontier.append(peer)
        return len(seen) == self.n

    def edges(self) -> Iterable[tuple]:
        for node in range(self.n):
            for peer in self._adjacency[node]:
                if node < peer:
                    yield (node, peer)
