"""repro — a reproduction of "Robust P2P Primitives Using SGX Enclaves"
(Jia, Tople, Moataz, Gong, Saxena, Liang — ICDCS 2020).

Quick start::

    from repro import SimulationConfig, run_erb, run_erng

    config = SimulationConfig(n=16, seed=7)
    result = run_erb(config, initiator=0, message=b"hello")
    assert all(v == b"hello" for v in result.outputs.values())

    rng = run_erng(SimulationConfig(n=16, seed=7))
    # every honest node holds the same unbiased 128-bit value
    assert len(set(rng.outputs.values())) == 1

Package layout (see DESIGN.md for the full inventory):

* :mod:`repro.core` — the paper's contribution: ERB (Alg. 2), ERNG
  (Alg. 3), optimized ERNG (Alg. 6), the strawman (Alg. 1), the P1-P6
  property registry, and the Appendix D sanitization model;
* :mod:`repro.sgx` — simulated SGX features F1-F4;
* :mod:`repro.channel` — the blinded peer channel (Appendix A, Fig. 4);
* :mod:`repro.net` — the synchronous network simulator;
* :mod:`repro.adversary` — byzantine OS behaviours (attacks A1-A5);
* :mod:`repro.baselines` — RBsig (Alg. 4) and RBearly (Alg. 5);
* :mod:`repro.crypto` — from-scratch primitives (SKE, MAC, DH, Schnorr);
* :mod:`repro.analysis` — complexity formulas, bias estimation, cluster
  math;
* :mod:`repro.apps` — Appendix H applications (beacon, random walk,
  shared keys, load balancing).
"""

from repro.common.config import AdversaryModel, ChannelSecurity, SimulationConfig
from repro.common.types import MessageType, NodeId, ProtocolMessage
from repro.core.agreement import (
    run_byzantine_agreement,
    run_interactive_consistency,
)
from repro.core.churn import ChurnDriver
from repro.core.erb import ErbProgram, run_erb
from repro.core.flooding import run_flood_erb
from repro.core.erng import ErngProgram, run_erng
from repro.core.erng_optimized import (
    ClusterConfig,
    OptimizedErngProgram,
    run_optimized_erng,
)
from repro.core.strawman import run_strawman_broadcast, run_strawman_rng
from repro.net.simulator import RunResult, SynchronousNetwork
from repro.net.topology import Topology

__version__ = "1.0.0"

__all__ = [
    "AdversaryModel",
    "ChannelSecurity",
    "ChurnDriver",
    "ClusterConfig",
    "ErbProgram",
    "ErngProgram",
    "MessageType",
    "NodeId",
    "OptimizedErngProgram",
    "ProtocolMessage",
    "RunResult",
    "SimulationConfig",
    "SynchronousNetwork",
    "Topology",
    "__version__",
    "run_byzantine_agreement",
    "run_erb",
    "run_erng",
    "run_flood_erb",
    "run_interactive_consistency",
    "run_optimized_erng",
    "run_strawman_broadcast",
    "run_strawman_rng",
]
