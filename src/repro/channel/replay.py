"""Message-freshness bookkeeping (property P6).

Every channel direction carries a strictly increasing counter, seeded at
channel establishment from enclave randomness (F2) so a byzantine OS cannot
predict or reset it.  The guard accepts a counter only if it is strictly
greater than everything seen so far on that direction — replaying an old
wire message (attack A5), even one captured from a parallel instance,
therefore fails closed.
"""

from __future__ import annotations

from repro.common.errors import ReplayError


class ReplayGuard:
    """Tracks the highest accepted counter for one channel direction."""

    def __init__(self, initial: int) -> None:
        # The initial sequence number exchanged during the setup phase.
        self._highest = initial

    @property
    def highest(self) -> int:
        return self._highest

    def check_and_update(self, counter: int) -> None:
        """Accept ``counter`` if fresh, else raise :class:`ReplayError`."""
        if counter <= self._highest:
            raise ReplayError(
                f"stale counter {counter} (highest accepted {self._highest})"
            )
        self._highest = counter
