"""``PeerCh_sgx`` — the blinded channel between two enclaves (Fig. 4).

Two security modes share one interface:

* ``FULL`` executes the construction byte-for-byte: attested DH key
  exchange at Init, SHA-256-CTR + HMAC encrypt-then-MAC at Write, MAC /
  measurement / counter verification at Read.
* ``MODELED`` keeps the *semantics* — identical acceptance and rejection
  behaviour, identical wire sizes (serialized plaintext + constant channel
  overhead) — without paying per-message hashing, so million-message
  simulations stay tractable.  Forgery attempts are represented by flags
  on the wire object (an adversary without the keys can only ever produce
  a wire message that fails verification, so a flag is a faithful model).

The invariant both modes enforce: *the receiving enclave only ever sees a
message that the sending enclave's program actually wrote, in order, at
most once* — everything else is surfaced as an omission.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from time import perf_counter
from typing import Dict, List, Optional, Sequence, Tuple

from repro.common.config import CHANNEL_OVERHEAD_BYTES, ChannelSecurity
from repro.common.errors import IntegrityError, ProtocolError
from repro.common.rng import DeterministicRNG
from repro.common.serialization import compose_tuple, decode, encode
from repro.common.types import NodeId, ProtocolMessage
from repro.channel.replay import ReplayGuard
from repro.crypto.aead import AEAD, AeadKey
from repro.crypto.dh import DhGroup, DiffieHellman, MODP_2048
from repro.crypto.kdf import hkdf
from repro.crypto.mac import KEY_SIZE
from repro.obs.metrics import PROFILER
from repro.sgx.enclave import Enclave

#: Length framing added by the transport on top of the sealed body.
_FRAMING_BYTES = 8


@dataclass
class WireMessage:
    """The unit the untrusted OS layer moves around.

    In FULL mode ``sealed`` holds real ciphertext bytes; in MODELED mode
    ``plain`` holds the plaintext object (which the *simulated* OS layer is
    trusted-by-construction not to inspect — adversary implementations only
    ever touch the flags and routing metadata, mirroring what a real OS can
    do with ciphertext).
    """

    sender: NodeId
    receiver: NodeId
    counter: int
    size: int
    sealed: Optional[bytes] = None
    plain: Optional[ProtocolMessage] = None
    plain_measurement: Optional[bytes] = None
    tampered: bool = False
    # Message type exposed for *accounting only* (the traffic statistics
    # classify bytes by type); adversary code must not branch on it except
    # where the paper grants identity/metadata visibility.
    mtype: Optional[object] = None
    # True when the body is ciphertext (or modeled as such): adversaries
    # must treat `plain` as unreadable.  Only the NONE-security transport
    # produces transparent wires.
    opaque: bool = True

    def tampered_copy(self) -> "WireMessage":
        """What an adversary flipping ciphertext bits produces (attack A2)."""
        if self.sealed is not None:
            body = bytearray(self.sealed)
            body[0] ^= 0xFF
            return replace(self, sealed=bytes(body), tampered=True)
        return replace(self, tampered=True)


@dataclass
class Envelope:
    """One physical link crossing: all traffic sharing a
    ``(sender, receiver, round)`` triple, coalesced.

    In a lockstep round everything node *i* sends node *j* is logically one
    transmission, so the engine's envelope path seals it as one unit.  In
    FULL mode ``sealed`` holds a single AEAD ciphertext over every member
    message (each member keeps its own channel counter inside, so replay
    protection and the *logical* per-member wire sizes match the per-wire
    path exactly); in MODELED/NONE mode ``members`` carries the plaintext
    objects, trusted-opaque exactly like :attr:`WireMessage.plain`
    (``None`` for the modeled ACK wave, where the engine aggregates digests
    without materializing per-ACK objects).

    ``size`` is the *physical* byte count of the crossing — member bodies
    plus one channel overhead, instead of one overhead per message.
    ``member_sizes`` (FULL only) are the logical per-member sizes, equal to
    what per-message :meth:`SecureChannel.write` calls would have produced.
    """

    sender: NodeId
    receiver: NodeId
    counter: int
    size: int
    count: int
    sealed: Optional[bytes] = None
    members: Optional[Sequence[ProtocolMessage]] = None
    member_measurement: Optional[bytes] = None
    member_sizes: Optional[List[int]] = None
    opaque: bool = True


class SecureChannel:
    """A bidirectional blinded channel between enclaves ``a`` and ``b``."""

    def __init__(
        self,
        a: NodeId,
        b: NodeId,
        security: ChannelSecurity,
        *,
        key: Optional[AeadKey] = None,
        measurement_a: Optional[bytes] = None,
        measurement_b: Optional[bytes] = None,
        initial_counters: Tuple[int, int] = (0, 0),
    ) -> None:
        self.a = a
        self.b = b
        self.security = security
        self._key = key
        self._aead = AEAD(key) if key is not None else None
        self._measurements = {a: measurement_a, b: measurement_b}
        # Per-direction send counters and replay guards (P6).
        init_ab, init_ba = initial_counters
        self._send_counter = {a: init_ab, b: init_ba}
        self._guards = {a: ReplayGuard(init_ab), b: ReplayGuard(init_ba)}

    # ------------------------------------------------------------------
    # Init — attested key exchange (Fig. 4's Init + setup phase of Sec. 4.1)
    # ------------------------------------------------------------------
    @staticmethod
    def establish(
        enclave_a: Enclave,
        enclave_b: Enclave,
        security: ChannelSecurity,
        group: DhGroup = MODP_2048,
    ) -> "SecureChannel":
        """Run the setup-phase handshake between two enclaves.

        Both sides verify the other's attestation quote over its DH public
        value before deriving keys; a wrong program measurement aborts with
        :class:`AttestationError` (enforcing P1).  Initial per-direction
        sequence numbers are drawn from enclave randomness (P6).
        """
        enclave_a.guard()
        enclave_b.guard()
        rng_a = enclave_a.rdrand.rng()
        rng_b = enclave_b.rdrand.rng()

        if security is ChannelSecurity.FULL:
            dh_a = DiffieHellman(rng_a, group)
            dh_b = DiffieHellman(rng_b, group)
            pair_a = dh_a.generate_keypair()
            pair_b = dh_b.generate_keypair()
            width = group.byte_width
            quote_a = enclave_a.quote(pair_a.public.to_bytes(width, "big"))
            quote_b = enclave_b.quote(pair_b.public.to_bytes(width, "big"))
            # Each side checks the peer runs the same program (P1/F3).
            enclave_a.verify_peer_quote(quote_b, enclave_a.measurement)
            enclave_b.verify_peer_quote(quote_a, enclave_b.measurement)
            secret = dh_a.shared_secret(pair_a, pair_b.public)
            secret_check = dh_b.shared_secret(pair_b, pair_a.public)
            if secret != secret_check:
                raise ProtocolError("DH exchange produced mismatched secrets")
            label = f"channel|{min(enclave_a.node_id, enclave_b.node_id)}|" \
                f"{max(enclave_a.node_id, enclave_b.node_id)}"
            material = hkdf(secret, info=label.encode(), length=2 * KEY_SIZE)
            key: Optional[AeadKey] = AeadKey(
                enc_key=material[:KEY_SIZE], mac_key=material[KEY_SIZE:]
            )
        else:
            key = None

        init_ab = rng_a.randint(1, 2**31)
        init_ba = rng_b.randint(1, 2**31)
        return SecureChannel(
            enclave_a.node_id,
            enclave_b.node_id,
            security,
            key=key,
            measurement_a=enclave_a.measurement,
            measurement_b=enclave_b.measurement,
            initial_counters=(init_ab, init_ba),
        )

    # ------------------------------------------------------------------
    def _peer_of(self, node: NodeId) -> NodeId:
        if node == self.a:
            return self.b
        if node == self.b:
            return self.a
        raise ProtocolError(f"node {node} is not an endpoint of this channel")

    def next_counter(self, sender: NodeId) -> int:
        self._send_counter[sender] += 1
        return self._send_counter[sender]

    # ------------------------------------------------------------------
    # Write — executed inside the sending enclave
    # ------------------------------------------------------------------
    def write(
        self,
        sender: NodeId,
        message: ProtocolMessage,
        rng: DeterministicRNG,
        measurement: bytes,
        precomputed_size: Optional[int] = None,
        encoded_message: Optional[bytes] = None,
    ) -> WireMessage:
        """Seal a protocol value for the peer (Fig. 4's Write).

        ``encoded_message`` may carry ``encode(message.to_tuple())``
        computed once per multicast; the FULL-mode plaintext is then
        composed from it instead of re-serializing the message for every
        receiver (the counter and measurement still differ per channel).
        """
        receiver = self._peer_of(sender)
        counter = self.next_counter(sender)
        if self.security is ChannelSecurity.FULL:
            assert self._aead is not None
            t0 = perf_counter() if PROFILER.enabled else None
            if encoded_message is None:
                plaintext = encode((counter, measurement, message.to_tuple()))
            else:
                plaintext = compose_tuple(
                    (encode(counter), encode(measurement), encoded_message)
                )
            direction = f"{sender}->{receiver}".encode()
            sealed = self._aead.seal(plaintext, rng, associated_data=direction)
            if t0 is not None:
                PROFILER.observe("channel.write_s", perf_counter() - t0)
            size = len(sealed) + _FRAMING_BYTES
            return WireMessage(
                sender=sender,
                receiver=receiver,
                counter=counter,
                size=size,
                sealed=sealed,
            )
        size = (
            precomputed_size
            if precomputed_size is not None
            else modeled_wire_size(message)
        )
        return WireMessage(
            sender=sender,
            receiver=receiver,
            counter=counter,
            size=size,
            plain=message,
            plain_measurement=measurement,
        )

    # ------------------------------------------------------------------
    # Read — executed inside the receiving enclave
    # ------------------------------------------------------------------
    def read(self, receiver: NodeId, wire: WireMessage) -> ProtocolMessage:
        """Verify and open a wire message (Fig. 4's Read).

        Raises :class:`IntegrityError` for tampering / wrong program and
        :class:`ReplayError` for stale counters; the transport treats both
        as omissions (Theorem A.2).
        """
        sender = self._peer_of(receiver)
        if wire.receiver != receiver or wire.sender != sender:
            raise IntegrityError("wire message routed to the wrong channel")
        expected_measurement = self._measurements.get(sender)

        if self.security is ChannelSecurity.FULL:
            assert self._aead is not None
            t0 = perf_counter() if PROFILER.enabled else None
            direction = f"{sender}->{receiver}".encode()
            plaintext = self._aead.open(wire.sealed, associated_data=direction)
            counter, measurement, raw = decode(plaintext)
            if t0 is not None:
                PROFILER.observe("channel.read_s", perf_counter() - t0)
            if expected_measurement is not None and measurement != expected_measurement:
                raise IntegrityError("message bound to a different program (H(pi) mismatch)")
            self._guards[sender].check_and_update(counter)
            return ProtocolMessage.from_tuple(raw)

        if wire.tampered:
            raise IntegrityError("MAC verification failed (modeled tampering)")
        if (
            expected_measurement is not None
            and wire.plain_measurement is not None
            and wire.plain_measurement != expected_measurement
        ):
            raise IntegrityError("message bound to a different program (H(pi) mismatch)")
        self._guards[sender].check_and_update(wire.counter)
        assert wire.plain is not None
        return wire.plain

    # ------------------------------------------------------------------
    # Envelope write/read — one AEAD call per link per round (FULL only)
    # ------------------------------------------------------------------
    def write_envelope(
        self,
        sender: NodeId,
        bodies: Sequence[bytes],
        rng: DeterministicRNG,
        measurement: bytes,
    ) -> Envelope:
        """Seal every queued message for the peer as one envelope.

        ``bodies`` are the pre-encoded message tuples
        (``encode(message.to_tuple())``), in queue order.  Each member is
        framed exactly as a per-message :meth:`write` would frame it —
        ``(counter, measurement, value)`` with this channel's next send
        counter — so the per-member *logical* sizes reported in
        ``member_sizes`` equal the per-wire path's sizes byte for byte;
        only the AEAD seal (and hence the enclave's nonce draws) is
        amortized over the whole link.
        """
        if self.security is not ChannelSecurity.FULL:
            raise ProtocolError("write_envelope requires a FULL channel")
        assert self._aead is not None
        receiver = self._peer_of(sender)
        t0 = perf_counter() if PROFILER.enabled else None
        measurement_enc = encode(measurement)
        pieces: List[bytes] = []
        member_sizes: List[int] = []
        for body in bodies:
            counter = self.next_counter(sender)
            piece = compose_tuple((encode(counter), measurement_enc, body))
            pieces.append(piece)
            member_sizes.append(len(piece) + AEAD.OVERHEAD + _FRAMING_BYTES)
        plaintext = compose_tuple(pieces)
        direction = f"{sender}->{receiver}".encode()
        sealed = self._aead.seal(plaintext, rng, associated_data=direction)
        if t0 is not None:
            PROFILER.observe("channel.write_s", perf_counter() - t0)
        return Envelope(
            sender=sender,
            receiver=receiver,
            counter=self._send_counter[sender],
            size=len(sealed) + _FRAMING_BYTES,
            count=len(pieces),
            sealed=sealed,
            member_sizes=member_sizes,
        )

    def read_envelope(self, receiver: NodeId, envelope: Envelope) -> Tuple[ProtocolMessage, ...]:
        """Verify and open an envelope: one AEAD open, then the per-member
        measurement and freshness checks of :meth:`read` in member order."""
        if self.security is not ChannelSecurity.FULL:
            raise ProtocolError("read_envelope requires a FULL channel")
        assert self._aead is not None
        sender = self._peer_of(receiver)
        if envelope.receiver != receiver or envelope.sender != sender:
            raise IntegrityError("envelope routed to the wrong channel")
        t0 = perf_counter() if PROFILER.enabled else None
        direction = f"{sender}->{receiver}".encode()
        plaintext = self._aead.open(envelope.sealed, associated_data=direction)
        triples = decode(plaintext)
        if t0 is not None:
            PROFILER.observe("channel.read_s", perf_counter() - t0)
        expected_measurement = self._measurements.get(sender)
        guard = self._guards[sender]
        messages = []
        for counter, measurement, raw in triples:
            if expected_measurement is not None and measurement != expected_measurement:
                raise IntegrityError(
                    "message bound to a different program (H(pi) mismatch)"
                )
            guard.check_and_update(counter)
            messages.append(ProtocolMessage.from_tuple(raw))
        return tuple(messages)


def modeled_wire_size(message: ProtocolMessage) -> int:
    """Wire size of ``message`` in MODELED mode.

    Serialized plaintext plus the constant channel overhead (nonce, MAC
    tag, measurement binding, framing) — calibrated so an ERB INIT lands
    near the ~100 B and an ACK near the ~80 B reported in Section 6.1.
    """
    if PROFILER.enabled:
        t0 = perf_counter()
        body = len(encode(message.to_tuple()))
        PROFILER.observe("serialize.encode_s", perf_counter() - t0)
        return body + CHANNEL_OVERHEAD_BYTES
    return len(encode(message.to_tuple())) + CHANNEL_OVERHEAD_BYTES


class ChannelTable:
    """All pairwise channels of one simulated network."""

    def __init__(self) -> None:
        self._channels: Dict[Tuple[NodeId, NodeId], SecureChannel] = {}

    @staticmethod
    def _key(a: NodeId, b: NodeId) -> Tuple[NodeId, NodeId]:
        return (a, b) if a <= b else (b, a)

    def add(self, channel: SecureChannel) -> None:
        self._channels[self._key(channel.a, channel.b)] = channel

    def get(self, a: NodeId, b: NodeId) -> SecureChannel:
        try:
            return self._channels[self._key(a, b)]
        except KeyError:
            raise ProtocolError(f"no channel between {a} and {b}") from None

    def __len__(self) -> int:
        return len(self._channels)

    def __contains__(self, pair: Tuple[NodeId, NodeId]) -> bool:
        return self._key(*pair) in self._channels
