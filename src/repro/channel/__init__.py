"""The blinded peer channel of Appendix A (Fig. 4: ``PeerCh_sgx``).

A :class:`~repro.channel.peer_channel.SecureChannel` connects two enclaves:

* **Init** — mutual remote attestation, Diffie-Hellman key exchange, HKDF
  split into (encryption, MAC) keys;
* **Write** — serialize the protocol value, encrypt-then-MAC it together
  with the program measurement and a per-direction counter;
* **Transfer** — performed by the untrusted OS layer / the network
  simulator (the channel itself never touches the network);
* **Read** — verify the MAC, check the program measurement, check counter
  freshness, and only then hand the plaintext to the receiving enclave.

Any verification failure surfaces as an exception the transport converts
into an *omission* — which is precisely the byzantine-to-ROD reduction of
Theorem A.2 made executable.
"""

from repro.channel.peer_channel import ChannelTable, SecureChannel, WireMessage
from repro.channel.replay import ReplayGuard

__all__ = ["ChannelTable", "ReplayGuard", "SecureChannel", "WireMessage"]
