"""RBearly — early-stopping broadcast with passive fault detection
(Algorithm 5, adapted from Perry-Toueg [82]).

General-omission-model protocol: every undecided node multicasts its
current view *every round* as a liveness signal.  A node that hears a real
value adopts it, relays it once, and decides; a node that hears only
silence decides ⊥ as soon as the round number exceeds the number of
distinct peers it has ever caught being quiet (``rnd > |QUIET|`` — more
silent rounds than there are faulty nodes to explain them).

This passively detects faults at O(N²) messages *per round*, O(N³) per
run — the cost ERB's halt-on-divergence (P4) replaces with O(N) active
self-detection, which is the Appendix B.2 comparison the Table 1 bench
measures.
"""

from __future__ import annotations

from typing import Dict, Optional, Set

from repro.common.config import SimulationConfig
from repro.common.types import MessageType, NodeId, ProtocolMessage
from repro.net.simulator import RunResult, SynchronousNetwork
from repro.sgx.program import EnclaveProgram

#: The "no value yet" marker broadcast as a liveness signal.
UNKNOWN = "?"


class RbEarlyProgram(EnclaveProgram):
    """Algorithm 5 at one node."""

    PROGRAM_NAME = "rb-early"
    PROGRAM_VERSION = "1"

    def __init__(
        self,
        node_id: NodeId,
        initiator: NodeId,
        n: int,
        t: int,
        message: object = None,
    ) -> None:
        super().__init__()
        self.node_id = node_id
        self.initiator = initiator
        self.n = n
        self.t = t
        self.broadcast_message = message
        self.m_hat: object = UNKNOWN
        self.quiet: Set[NodeId] = set()
        self._heard_this_round: Set[NodeId] = set()
        self._adopted_round: Optional[int] = None

    @property
    def round_bound(self) -> int:
        return self.t + 1

    # ------------------------------------------------------------------
    def on_round_begin(self, ctx) -> None:
        if self.has_output:
            return  # decided nodes halt (stop broadcasting)
        self._heard_this_round = set()
        if ctx.round == 1 and ctx.node_id == self.initiator:
            self.m_hat = self.broadcast_message
            self._broadcast_view(ctx)
            self._accept(ctx, self.m_hat)
            return
        # Liveness broadcast: every round, every undecided node speaks.
        self._broadcast_view(ctx)

    def on_message(self, ctx, sender: NodeId, message: ProtocolMessage) -> None:
        if message.type is not MessageType.VALUE or self.has_output:
            return
        self._heard_this_round.add(sender)
        if message.payload != UNKNOWN and self.m_hat == UNKNOWN:
            self.m_hat = message.payload
            self._adopted_round = ctx.round

    def on_round_end(self, ctx) -> None:
        if self.has_output:
            return
        # Passive detection: anyone silent this round joins QUIET forever.
        expected = set(range(self.n)) - {self.node_id}
        self.quiet |= expected - self._heard_this_round
        if self.m_hat != UNKNOWN and self._adopted_round is not None:
            # Value adopted in round r is relayed in r+1 (queued by the
            # next on_round_begin); decide once the relay has gone out.
            if ctx.round > self._adopted_round:
                self._accept(ctx, self.m_hat)
                return
        if self.m_hat == UNKNOWN and ctx.round > len(self.quiet):
            # More silent rounds than faulty nodes could cause: nothing
            # is coming.  Decide ⊥.
            self._accept(ctx, None)
            return
        if ctx.round >= self.round_bound:
            self._accept(ctx, self.m_hat if self.m_hat != UNKNOWN else None)

    def on_protocol_end(self, ctx) -> None:
        if not self.has_output:
            self._accept(ctx, self.m_hat if self.m_hat != UNKNOWN else None)

    # ------------------------------------------------------------------
    def _broadcast_view(self, ctx) -> None:
        ctx.multicast(
            ProtocolMessage(
                type=MessageType.VALUE,
                initiator=self.initiator,
                seq=0,
                payload=self.m_hat,
                rnd=0,
                instance="rbearly",
            ),
            expect_acks=False,
        )


def run_rb_early(
    config: SimulationConfig,
    initiator: NodeId,
    message: object,
    behaviors: Optional[Dict[NodeId, object]] = None,
) -> RunResult:
    """Run the early-stopping omission-model broadcast."""

    def factory(node_id: NodeId) -> RbEarlyProgram:
        return RbEarlyProgram(
            node_id=node_id,
            initiator=initiator,
            n=config.n,
            t=config.t,
            message=message if node_id == initiator else None,
        )

    network = SynchronousNetwork(config, factory, behaviors=behaviors)
    return network.run(max_rounds=config.t + 1)
