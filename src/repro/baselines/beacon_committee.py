"""Committee beacon cost model — the error-correcting-code baseline.

RandSolomon (PAPERS.md) produces distributed randomness with
deterministic termination and *optimal resilience for its model*:
N = 4f+1 parties, no trusted hardware, Reed-Solomon share encoding plus
signatures doing the work SGX does for ERNG.  This module is an
**analytic cost model** of that protocol family — not a runnable
implementation — so EXPERIMENTS.md can put a "TEE-reduction vs
error-correcting-code" row next to the measured beacon numbers:

* every party RS-encodes its contribution into N fragments (any f+1
  reconstruct) and sends fragment *j*, signed, to party *j* —
  ``N·(N-1)`` share messages;
* every party then relays its received fragment vector, signed, to
  everyone — ``N·(N-1)`` vector messages of O(N·fragment) bytes (the
  O(N³)-bits step that dominates);
* every received message's signature is verified, and every party
  interpolates N codewords at O((f+1)²) field operations each.

The TEE reduction replaces all of it: attested enclaves make RDRAND
draws trustworthy at the source, so ERNG needs no PKI, no signature
chains and no decoding — and tolerates ``t < N/2`` instead of
``f < N/4``.  The honest comparison is therefore **at equal fault
tolerance**: to survive f byzantine nodes the committee needs 4f+1
parties where the TEE beacon needs 2f+1 (P2/P3 bounds), and
:func:`tolerance_row` prices both at that calibration.

The per-message byte constants reuse :mod:`repro.baselines.rb_sig`'s
signature footprint so the two baseline families stay comparable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.common.errors import ConfigurationError
from repro.crypto.schnorr import SIGNATURE_BYTES


@dataclass(frozen=True)
class CommitteeBeaconModel:
    """Per-epoch cost accounting for a RandSolomon-style committee.

    ``share_bits`` is each party's randomness contribution (matching the
    ERNG beacon's ``random_bits``); ``header_bytes`` the per-message
    envelope, matching the simulator's serialized header overhead.
    """

    share_bits: int = 128
    signature_bytes: int = SIGNATURE_BYTES
    header_bytes: int = 32

    # -- structure ------------------------------------------------------
    def fault_bound(self, n: int) -> int:
        """f such that N >= 4f+1 (deterministic-termination optimum)."""
        if n < 5:
            raise ConfigurationError(
                f"committee beacon needs N >= 5 (N = 4f+1); got N={n}"
            )
        return (n - 1) // 4

    def committee_for_tolerance(self, f: int) -> int:
        """Smallest committee tolerating ``f`` byzantine parties."""
        return 4 * f + 1

    def fragment_bytes(self, n: int) -> int:
        """One RS fragment: the contribution split over f+1 data symbols
        (any f+1 of N fragments reconstruct), rounded up to bytes."""
        f = self.fault_bound(n)
        share_bytes = (self.share_bits + 7) // 8
        return max(1, -(-share_bytes // (f + 1)))

    # -- per-epoch costs ------------------------------------------------
    def rounds(self, n: int) -> int:
        """Share round + vector round + local reconstruction."""
        return 2

    def messages(self, n: int) -> int:
        return 2 * n * (n - 1)

    def bytes_sent(self, n: int) -> int:
        frag = self.fragment_bytes(n)
        per_message_overhead = self.signature_bytes + self.header_bytes
        share_wave = n * (n - 1) * (frag + per_message_overhead)
        vector_wave = n * (n - 1) * (n * frag + per_message_overhead)
        return share_wave + vector_wave

    def signature_verifications(self, n: int) -> int:
        return self.messages(n)

    def field_operations(self, n: int) -> int:
        """RS interpolation work per party times N parties: each party
        decodes N codewords at O((f+1)^2) multiply-adds."""
        f = self.fault_bound(n)
        return n * n * (f + 1) ** 2

    def epoch_row(self, n: int) -> Dict:
        """One EXPERIMENTS.md-shaped row of per-epoch counted costs."""
        return {
            "n": n,
            "fault_bound": self.fault_bound(n),
            "rounds": self.rounds(n),
            "messages": self.messages(n),
            "bytes": self.bytes_sent(n),
            "signature_verifications": self.signature_verifications(n),
            "field_operations": self.field_operations(n),
        }

    # -- the apples-to-apples comparison --------------------------------
    def tolerance_row(self, f: int, tee_row: Dict) -> Dict:
        """Price the committee at tolerance ``f`` against a measured TEE
        beacon row (``messages``/``bytes`` per epoch, from the beacon
        benchmark) whose population tolerates the same ``f``.

        The returned ratios read "committee cost over TEE cost": > 1
        means the error-correcting-code construction pays more of that
        resource than the TEE reduction at equal fault tolerance —
        alongside the structural costs the TEE removes entirely
        (signature verifications, RS field operations: the TEE column
        for both is zero).
        """
        n = self.committee_for_tolerance(f)
        row = self.epoch_row(n)
        epochs = max(1, int(tee_row.get("epochs", 1)))
        tee_messages = tee_row["messages"] / epochs
        tee_bytes = tee_row.get("bytes", 0) / epochs
        comparison = {
            "tolerance_f": f,
            "committee_n": n,
            "tee_n": 2 * f + 1,
            "committee": row,
            "tee_messages_per_epoch": round(tee_messages),
            "message_ratio_committee_over_tee": round(
                row["messages"] / tee_messages, 3
            ) if tee_messages else None,
        }
        if tee_bytes:
            comparison["byte_ratio_committee_over_tee"] = round(
                row["bytes"] / tee_bytes, 3
            )
        return comparison
