"""RBsig — reliable broadcast with digital-signature chains (Algorithm 4).

Adapted from Lamport et al. [65] / Dolev-Strong [49]: a message is valid in
round ``rnd`` if it carries ``rnd`` distinct valid signatures starting with
the initiator's.  On first sight of a value, a node stores it, appends its
own signature and relays to everyone that has not yet signed.  After round
``t+1``: accept the unique stored value, or ⊥ if zero or several values
were stored.

Costs (what ERB eliminates, Appendix B.1): every relayed message carries
up to ``t+1`` signatures (≈192 B each here), and every hop verifies the
entire chain — the per-run signature-verification counter is exported so
the Table 1 bench can report computation alongside traffic.

Two signature fidelities, mirroring the channel modes: with
``real_signatures=True`` actual Schnorr chains are produced and verified;
otherwise chains carry fixed-size placeholder tags (byte-identical wire
footprint, verification counted but not computed).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.common.config import SimulationConfig
from repro.common.rng import DeterministicRNG
from repro.common.serialization import encode
from repro.common.types import MessageType, NodeId, ProtocolMessage
from repro.crypto.dh import MODP_768, DhGroup
from repro.crypto.schnorr import (
    SIGNATURE_BYTES,
    SchnorrKeyPair,
    SchnorrSignature,
    schnorr_keygen,
    schnorr_verify,
)
from repro.net.simulator import RunResult, SynchronousNetwork
from repro.sgx.program import EnclaveProgram


class KeyRegistry:
    """The pre-established PKI the byzantine model must assume (Sec. 7)."""

    def __init__(
        self,
        n: int,
        seed: object = 0,
        real_signatures: bool = False,
        group: DhGroup = MODP_768,
    ) -> None:
        self.n = n
        self.real_signatures = real_signatures
        self.group = group
        self._rng = DeterministicRNG(("pki", seed))
        self._keys: Dict[NodeId, SchnorrKeyPair] = {}
        if real_signatures:
            for node in range(n):
                self._keys[node] = schnorr_keygen(
                    self._rng.fork(("key", node)), group
                )
        self.verifications = 0  # shared verification-work counter

    def sign(self, signer: NodeId, material: bytes) -> tuple:
        if self.real_signatures:
            sig = self._keys[signer].sign(material, self._rng.fork(material))
            return (signer, sig.e, sig.s)
        # Placeholder with the same wire footprint as (e, s).
        return (signer, b"\x00" * SIGNATURE_BYTES)

    def verify(self, signer: NodeId, material: bytes, entry: tuple) -> bool:
        self.verifications += 1
        if not self.real_signatures:
            return isinstance(entry, tuple) and entry[0] == signer
        if len(entry) != 3 or entry[0] != signer:
            return False
        return schnorr_verify(
            self.group,
            self._keys[signer].public,
            material,
            SchnorrSignature(e=entry[1], s=entry[2]),
        )


def _chain_material(initiator: NodeId, payload: object, signers: tuple) -> bytes:
    """Bytes signed by the next signer: value + everyone who signed before."""
    return encode((initiator, payload, signers))


class RbSigProgram(EnclaveProgram):
    """Algorithm 4 at one node."""

    PROGRAM_NAME = "rb-sig"
    PROGRAM_VERSION = "1"

    def __init__(
        self,
        node_id: NodeId,
        initiator: NodeId,
        n: int,
        t: int,
        registry: KeyRegistry,
        message: object = None,
    ) -> None:
        super().__init__()
        self.node_id = node_id
        self.initiator = initiator
        self.n = n
        self.t = t
        self.registry = registry
        self.broadcast_message = message
        self.s_m: set = set()  # values seen with valid chains

    @property
    def round_bound(self) -> int:
        return self.t + 1

    # ------------------------------------------------------------------
    def on_round_begin(self, ctx) -> None:
        if ctx.round == 1 and ctx.node_id == self.initiator:
            self.s_m.add(self.broadcast_message)
            chain = (
                self.registry.sign(
                    self.node_id,
                    _chain_material(self.initiator, self.broadcast_message, ()),
                ),
            )
            self._relay(ctx, self.broadcast_message, chain, exclude=())

    def on_message(self, ctx, sender: NodeId, message: ProtocolMessage) -> None:
        if message.type is not MessageType.SIGNED:
            return
        chain = message.extra
        if not self._chain_valid(message.payload, chain, ctx.round):
            return
        if message.payload in self.s_m:
            return
        self.s_m.add(message.payload)
        if len(chain) < self.t + 1 and self.node_id not in {c[0] for c in chain}:
            signed_ids = tuple(entry[0] for entry in chain)
            new_chain = chain + (
                self.registry.sign(
                    self.node_id,
                    _chain_material(self.initiator, message.payload, signed_ids),
                ),
            )
            # Staged for the next round (relay semantics of Algorithm 4).
            self._relay(
                ctx,
                message.payload,
                new_chain,
                exclude={entry[0] for entry in new_chain},
            )

    def on_round_end(self, ctx) -> None:
        if ctx.round >= self.round_bound and not self.has_output:
            self._decide(ctx)

    def on_protocol_end(self, ctx) -> None:
        if not self.has_output:
            self._decide(ctx)

    # ------------------------------------------------------------------
    def _decide(self, ctx) -> None:
        if len(self.s_m) == 1:
            self._accept(ctx, next(iter(self.s_m)))
        else:
            self._accept(ctx, None)

    def _relay(self, ctx, payload: object, chain: tuple, exclude) -> None:
        targets = tuple(
            node for node in range(self.n)
            if node != self.node_id and node not in exclude
        )
        if not targets:
            return
        ctx.multicast(
            ProtocolMessage(
                type=MessageType.SIGNED,
                initiator=self.initiator,
                seq=0,
                payload=payload,
                rnd=0,
                instance="rbsig",
                extra=chain,
            ),
            targets=targets,
            expect_acks=False,
        )

    def _chain_valid(self, payload: object, chain: tuple, rnd: int) -> bool:
        """A round-``rnd`` message must carry ``rnd`` distinct signatures,
        the first from the initiator, each over the preceding prefix."""
        if not chain or len(chain) != rnd:
            return False
        signers = [entry[0] for entry in chain]
        if signers[0] != self.initiator or len(set(signers)) != len(signers):
            return False
        if self.node_id in signers:
            return False
        prefix: Tuple[NodeId, ...] = ()
        for entry in chain:
            material = _chain_material(self.initiator, payload, prefix)
            if not self.registry.verify(entry[0], material, entry):
                return False
            prefix = prefix + (entry[0],)
        return True


def run_rb_sig(
    config: SimulationConfig,
    initiator: NodeId,
    message: object,
    behaviors: Optional[Dict[NodeId, object]] = None,
    real_signatures: bool = False,
) -> Tuple[RunResult, KeyRegistry]:
    """Run RBsig; returns the result plus the registry (for verification
    counts)."""
    registry = KeyRegistry(
        config.n, seed=config.seed, real_signatures=real_signatures
    )

    def factory(node_id: NodeId) -> RbSigProgram:
        return RbSigProgram(
            node_id=node_id,
            initiator=initiator,
            n=config.n,
            t=config.t,
            registry=registry,
            message=message if node_id == initiator else None,
        )

    network = SynchronousNetwork(config, factory, behaviors=behaviors)
    return network.run(max_rounds=config.t + 1), registry
