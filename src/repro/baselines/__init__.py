"""Classic reliable-broadcast baselines the paper compares against.

* :mod:`repro.baselines.rb_sig` — Algorithm 4 (Appendix B.1): the
  Lamport/Dolev-Strong-style protocol using digital-signature chains.
  Tolerates up to N-1 byzantine nodes but pays O(N³) communication and
  heavy signature verification — the costs ERB's blinded channels avoid.
* :mod:`repro.baselines.rb_early` — Algorithm 5 (Appendix B.2): the
  Perry-Toueg-style early-stopping broadcast for the general-omission
  model.  Terminates in min{f+2, t+1} rounds, but every node broadcasts
  its state every round for liveness, costing O(N³) — the passive fault
  detection that ERB's halt-on-divergence (P4) replaces with an O(N)
  active mechanism.

Both run on the same simulator as ERB so the Table 1 benchmark can put
measured rounds, messages and bytes side by side.

* :mod:`repro.baselines.beacon_committee` — a RandSolomon-flavored
  analytic cost model of a committee/error-correcting-code random
  beacon (N = 4f+1, Reed-Solomon shares, signature chains), priced at
  equal fault tolerance against the measured TEE beacon for the
  EXPERIMENTS.md "TEE-reduction vs error-correcting-code" row.
"""

from repro.baselines.beacon_committee import CommitteeBeaconModel
from repro.baselines.rb_early import RbEarlyProgram, run_rb_early
from repro.baselines.rb_sig import KeyRegistry, RbSigProgram, run_rb_sig

__all__ = [
    "CommitteeBeaconModel",
    "KeyRegistry",
    "RbEarlyProgram",
    "RbSigProgram",
    "run_rb_early",
    "run_rb_sig",
]
