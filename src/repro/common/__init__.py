"""Shared building blocks: identifiers, message types, config, serialization.

Everything in :mod:`repro.common` is protocol-agnostic.  The conventions
established here (deterministic serialization, seeded randomness, explicit
round numbers) are what make simulation runs exactly reproducible, which in
turn is what lets the test-suite make sharp assertions about round counts
and message counts.
"""

from repro.common.config import (
    AdversaryModel,
    ChannelSecurity,
    SimulationConfig,
)
from repro.common.errors import (
    ConfigurationError,
    IntegrityError,
    ProtocolError,
    ReplayError,
    ReproError,
    SerializationError,
)
from repro.common.rng import DeterministicRNG
from repro.common.serialization import decode, encode, encoded_size
from repro.common.types import (
    MessageType,
    NodeId,
    ProtocolMessage,
    Round,
)

__all__ = [
    "AdversaryModel",
    "ChannelSecurity",
    "ConfigurationError",
    "DeterministicRNG",
    "IntegrityError",
    "MessageType",
    "NodeId",
    "ProtocolError",
    "ProtocolMessage",
    "ReplayError",
    "ReproError",
    "Round",
    "SerializationError",
    "SimulationConfig",
    "decode",
    "encode",
    "encoded_size",
]
