"""Deterministic, forkable randomness for simulations.

Every source of randomness in the library flows through
:class:`DeterministicRNG`, a SHA-256-in-counter-mode generator.  Two goals:

* **Reproducibility** — a simulation seeded with the same integer produces
  bit-identical runs, so round counts, traffic sizes and protocol outputs
  can be asserted exactly in tests.
* **Independence by labeling** — :meth:`fork` derives an independent child
  stream from a label, so e.g. every enclave's RDRAND source and every
  adversary's coin flips are decoupled: adding randomness consumption in
  one component never perturbs another.

The generator is *not* a substitute for ``secrets`` in real deployments; it
models the paper's F2 (hardware randomness hidden from the OS): within the
simulation the adversary is never handed the stream state.
"""

from __future__ import annotations

import hashlib
from typing import Iterable, List, Sequence, TypeVar

T = TypeVar("T")


class DeterministicRNG:
    """SHA-256 counter-mode pseudorandom generator."""

    def __init__(self, seed: object) -> None:
        material = repr(seed).encode("utf-8")
        self._key = hashlib.sha256(b"repro-rng:" + material).digest()
        self._counter = 0
        self._buffer = b""

    def fork(self, label: object) -> "DeterministicRNG":
        """Derive an independent child generator keyed by ``label``."""
        child = DeterministicRNG(0)
        material = self._key + b"|fork|" + repr(label).encode("utf-8")
        child._key = hashlib.sha256(material).digest()
        return child

    def _refill(self) -> None:
        block = hashlib.sha256(
            self._key + self._counter.to_bytes(8, "big")
        ).digest()
        self._counter += 1
        self._buffer += block

    def randbytes(self, n: int) -> bytes:
        """Return ``n`` pseudorandom bytes."""
        if n < 0:
            raise ValueError("n must be non-negative")
        while len(self._buffer) < n:
            self._refill()
        out, self._buffer = self._buffer[:n], self._buffer[n:]
        return out

    def randbits(self, k: int) -> int:
        """Return a uniform integer in ``[0, 2**k)``."""
        if k < 0:
            raise ValueError("k must be non-negative")
        if k == 0:
            return 0
        nbytes = (k + 7) // 8
        value = int.from_bytes(self.randbytes(nbytes), "big")
        return value >> (8 * nbytes - k)

    def randint(self, low: int, high: int) -> int:
        """Uniform integer in the inclusive range ``[low, high]``.

        Uses rejection sampling so the distribution is exactly uniform.
        """
        if high < low:
            raise ValueError(f"empty range [{low}, {high}]")
        span = high - low + 1
        k = span.bit_length()
        while True:
            value = self.randbits(k)
            if value < span:
                return low + value

    def randrange(self, n: int) -> int:
        """Uniform integer in ``[0, n)``."""
        if n <= 0:
            raise ValueError("n must be positive")
        return self.randint(0, n - 1)

    def random(self) -> float:
        """Uniform float in ``[0, 1)`` with 53 bits of precision."""
        return self.randbits(53) / (1 << 53)

    def choice(self, seq: Sequence[T]) -> T:
        """Uniform choice from a non-empty sequence."""
        if not seq:
            raise ValueError("cannot choose from an empty sequence")
        return seq[self.randrange(len(seq))]

    def sample(self, population: Sequence[T], k: int) -> List[T]:
        """``k`` distinct elements sampled uniformly without replacement."""
        if k < 0 or k > len(population):
            raise ValueError(f"cannot sample {k} from {len(population)} items")
        pool = list(population)
        self.shuffle(pool)
        return pool[:k]

    def shuffle(self, items: list) -> None:
        """In-place Fisher-Yates shuffle."""
        for i in range(len(items) - 1, 0, -1):
            j = self.randint(0, i)
            items[i], items[j] = items[j], items[i]

    def bernoulli(self, p: float) -> bool:
        """Coin flip returning True with probability ``p``."""
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"probability out of range: {p}")
        return self.random() < p

    def subset(self, population: Iterable[T], p: float) -> List[T]:
        """Each element kept independently with probability ``p``."""
        return [item for item in population if self.bernoulli(p)]
