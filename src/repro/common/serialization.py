"""Deterministic, self-describing binary serialization.

The blinded channel of the paper (Fig. 4) encrypts and MACs the serialized
protocol value, so the library needs an encoding that is

* **deterministic** — two equal values always produce identical bytes (the
  MAC and the traffic statistics both depend on this), and
* **self-describing** — the receiver can decode without out-of-band schema.

The format is a small tagged length-prefixed encoding covering exactly the
types protocol values are built from: ``None``, ``bool``, ``int``, ``bytes``,
``str``, ``tuple``/``list`` (both decode as ``tuple``), and ``dict`` with
sorted keys.  It is intentionally *not* pickle: decoding attacker-supplied
bytes must never execute code.
"""

from __future__ import annotations

from typing import Sequence, Tuple

from repro.common.errors import SerializationError

_TAG_NONE = b"N"
_TAG_TRUE = b"T"
_TAG_FALSE = b"F"
_TAG_INT = b"i"
_TAG_BYTES = b"b"
_TAG_STR = b"s"
_TAG_TUPLE = b"t"
_TAG_DICT = b"d"

_LEN_BYTES = 4
_MAX_LEN = 2 ** (8 * _LEN_BYTES) - 1


def _encode_length(n: int) -> bytes:
    if n > _MAX_LEN:
        raise SerializationError(f"value too large to encode: {n} bytes")
    return n.to_bytes(_LEN_BYTES, "big")


def encode(value: object) -> bytes:
    """Encode ``value`` into deterministic bytes.

    Raises :class:`SerializationError` for unsupported types.
    """
    if value is None:
        return _TAG_NONE
    if value is True:
        return _TAG_TRUE
    if value is False:
        return _TAG_FALSE
    if isinstance(value, int):
        # Two's-complement-free signed encoding: sign byte + magnitude.
        sign = b"-" if value < 0 else b"+"
        magnitude = abs(value)
        body = magnitude.to_bytes((magnitude.bit_length() + 7) // 8 or 1, "big")
        return _TAG_INT + _encode_length(len(body) + 1) + sign + body
    if isinstance(value, bytes):
        return _TAG_BYTES + _encode_length(len(value)) + value
    if isinstance(value, str):
        body = value.encode("utf-8")
        return _TAG_STR + _encode_length(len(body)) + body
    if isinstance(value, (tuple, list)):
        parts = [encode(item) for item in value]
        body = b"".join(parts)
        return _TAG_TUPLE + _encode_length(len(value)) + body
    if isinstance(value, dict):
        try:
            items = sorted(value.items())
        except TypeError as exc:
            raise SerializationError(f"dict keys must be sortable: {exc}") from exc
        parts = []
        for key, item in items:
            parts.append(encode(key))
            parts.append(encode(item))
        body = b"".join(parts)
        return _TAG_DICT + _encode_length(len(value)) + body
    if isinstance(value, frozenset):
        raise SerializationError("encode frozensets as sorted tuples instead")
    raise SerializationError(f"unsupported type for encoding: {type(value).__name__}")


def encoded_size(value: object) -> int:
    """Length in bytes of ``encode(value)`` (used for traffic accounting).

    Computed arithmetically, without materializing the encoding: message
    sizing runs once per multicast on the engine's hot transmit path,
    where allocating and immediately discarding the full byte string
    (the old implementation) was pure overhead.  Must return exactly
    ``len(encode(value))`` for every supported value — pinned by the
    serialization test suite.
    """
    if value is None or value is True or value is False:
        return 1
    if isinstance(value, int):
        magnitude = abs(value)
        body = (magnitude.bit_length() + 7) // 8 or 1
        return 1 + _LEN_BYTES + 1 + body
    if isinstance(value, bytes):
        return 1 + _LEN_BYTES + len(value)
    if isinstance(value, str):
        return 1 + _LEN_BYTES + len(value.encode("utf-8"))
    if isinstance(value, (tuple, list)):
        return 1 + _LEN_BYTES + sum(encoded_size(item) for item in value)
    if isinstance(value, dict):
        return 1 + _LEN_BYTES + sum(
            encoded_size(key) + encoded_size(item)
            for key, item in value.items()
        )
    # Unsupported types (frozenset included) raise exactly as encode does.
    return len(encode(value))


def compose_tuple(encoded_items: Sequence[bytes]) -> bytes:
    """Compose already-encoded items into the encoding of their tuple.

    ``compose_tuple([encode(a), encode(b)]) == encode((a, b))`` — a tuple
    encodes as its tag, item count and concatenated item encodings, so a
    sub-encoding shared across many values (e.g. one message body sealed
    for every receiver of a multicast) can be reused without
    re-serializing it.
    """
    return _TAG_TUPLE + _encode_length(len(encoded_items)) + b"".join(encoded_items)


def decode(data: bytes) -> object:
    """Decode bytes produced by :func:`encode`.

    Raises :class:`SerializationError` on malformed or trailing input.
    """
    value, offset = _decode_at(data, 0)
    if offset != len(data):
        raise SerializationError(
            f"trailing garbage after decoded value ({len(data) - offset} bytes)"
        )
    return value


def _read_length(data: bytes, offset: int) -> Tuple[int, int]:
    end = offset + _LEN_BYTES
    if end > len(data):
        raise SerializationError("truncated length field")
    return int.from_bytes(data[offset:end], "big"), end


def _decode_at(data: bytes, offset: int) -> Tuple[object, int]:
    if offset >= len(data):
        raise SerializationError("unexpected end of input")
    tag = data[offset : offset + 1]
    offset += 1
    if tag == _TAG_NONE:
        return None, offset
    if tag == _TAG_TRUE:
        return True, offset
    if tag == _TAG_FALSE:
        return False, offset
    if tag == _TAG_INT:
        length, offset = _read_length(data, offset)
        end = offset + length
        if end > len(data) or length < 2:
            raise SerializationError("truncated int body")
        sign = data[offset : offset + 1]
        magnitude = int.from_bytes(data[offset + 1 : end], "big")
        if sign == b"-":
            return -magnitude, end
        if sign == b"+":
            return magnitude, end
        raise SerializationError(f"bad int sign byte: {sign!r}")
    if tag == _TAG_BYTES:
        length, offset = _read_length(data, offset)
        end = offset + length
        if end > len(data):
            raise SerializationError("truncated bytes body")
        return data[offset:end], end
    if tag == _TAG_STR:
        length, offset = _read_length(data, offset)
        end = offset + length
        if end > len(data):
            raise SerializationError("truncated str body")
        try:
            return data[offset:end].decode("utf-8"), end
        except UnicodeDecodeError as exc:
            raise SerializationError(f"invalid utf-8 in str body: {exc}") from exc
    if tag == _TAG_TUPLE:
        count, offset = _read_length(data, offset)
        items = []
        for _ in range(count):
            item, offset = _decode_at(data, offset)
            items.append(item)
        return tuple(items), offset
    if tag == _TAG_DICT:
        count, offset = _read_length(data, offset)
        result = {}
        for _ in range(count):
            key, offset = _decode_at(data, offset)
            item, offset = _decode_at(data, offset)
            result[key] = item
        return result, offset
    raise SerializationError(f"unknown tag byte: {tag!r}")
