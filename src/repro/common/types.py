"""Core value types shared by every protocol.

The on-the-wire value format follows Section 4 of the paper::

    val := <type, id, seq, m, rnd>

where ``type`` is one of ``INIT | ECHO | ACK`` (the ERNG protocols add
``CHOSEN`` and ``FINAL``, the baselines add ``SIGNED`` and ``VALUE``), ``id``
is the initiator's identifier, ``seq`` the initiator's sequence number for
this protocol instance, ``m`` the payload and ``rnd`` the sender's current
round number.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Tuple

# A peer identifier.  The paper gives every peer ``p_i`` an identifier
# ``id_i``; we use small integers ``0..N-1`` which double as indices into
# the simulator's node table.
NodeId = int

# A 1-based synchronous round number (``rnd`` in the paper).
Round = int


class MessageType(enum.Enum):
    """Wire-level message types used across all protocols in the paper."""

    INIT = "INIT"          # initiator starts a broadcast        (Alg. 2)
    ECHO = "ECHO"          # relay of a received broadcast value (Alg. 2)
    ACK = "ACK"            # per-message acknowledgement         (Alg. 2, P4)
    CHOSEN = "CHOSEN"      # cluster-membership announcement     (Alg. 6)
    FINAL = "FINAL"        # cluster's final random-number set   (Alg. 6)
    SIGNED = "SIGNED"      # signature-chain message             (Alg. 4, RBsig)
    VALUE = "VALUE"        # liveness/value broadcast            (Alg. 5, RBearly)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"MessageType.{self.name}"


@dataclass(frozen=True)
class ProtocolMessage:
    """The plaintext protocol value ``val = <type, id, seq, m, rnd>``.

    ``instance`` identifies which protocol instance the value belongs to;
    the ERNG protocols multiplex up to N concurrent ERB instances over the
    same peer channels, and the instance tag is what keeps their sequence
    spaces apart.  ``extra`` carries protocol-specific auxiliary data (e.g.
    the signature chain of RBsig) and is included in the serialized form.
    """

    type: MessageType
    initiator: NodeId
    seq: int
    payload: object
    rnd: Round
    instance: str = ""
    extra: Tuple = field(default=())

    def to_tuple(self) -> tuple:
        """Deterministic tuple form used for serialization and hashing."""
        return (
            self.type.value,
            self.initiator,
            self.seq,
            self.payload,
            self.rnd,
            self.instance,
            self.extra,
        )

    @staticmethod
    def from_tuple(raw: tuple) -> "ProtocolMessage":
        if not isinstance(raw, tuple) or len(raw) != 7:
            raise ValueError(f"malformed ProtocolMessage tuple: {raw!r}")
        type_value, initiator, seq, payload, rnd, instance, extra = raw
        return ProtocolMessage(
            type=MessageType(type_value),
            initiator=initiator,
            seq=seq,
            payload=payload,
            rnd=rnd,
            instance=instance,
            extra=tuple(extra),
        )

    def with_round(self, rnd: Round) -> "ProtocolMessage":
        """Copy of this value re-stamped with round ``rnd``."""
        return ProtocolMessage(
            type=self.type,
            initiator=self.initiator,
            seq=self.seq,
            payload=self.payload,
            rnd=rnd,
            instance=self.instance,
            extra=self.extra,
        )
