"""Simulation-wide configuration objects.

:class:`SimulationConfig` fixes the paper's model assumptions S1-S5
(Section 2.2 / Appendix G):

* S1 — the network size ``n`` is known to every peer;
* S2 — the protocol starts synchronously (round 1 begins at time 0);
* S3 — a round lasts ``2 * delta`` seconds (one round trip);
* S4 — at most ``t < n/2`` peers are byzantine (``t <= n/3`` for the
  optimized ERNG);
* S5 — peers are fully connected (a sparse expander with flooding is
  available as the relaxation discussed in Appendix G).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from repro.common.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.obs.timing import TimingCollector
    from repro.obs.tracer import Tracer


class ChannelSecurity(enum.Enum):
    """How faithfully the blinded peer channel (Fig. 4) is executed.

    ``FULL`` runs the real construction: Diffie-Hellman session keys,
    SHA-256-CTR encryption, HMAC encrypt-then-MAC, byte-exact wire images.
    ``MODELED`` skips the arithmetic but keeps the *semantics*: message
    sizes are computed from the serialized plaintext plus the channel
    overhead, and integrity / freshness / round checks behave identically.
    Tests exercise ``FULL``; the large-N scaling benchmarks use ``MODELED``.

    ``NONE`` disables the blinded channel entirely — no integrity, no
    freshness, adversaries may read and forge plaintext.  This mode exists
    to demonstrate the attacks A1-A5 against the strawman protocol
    (Algorithm 1); the SGX-backed protocols are never run under it.
    """

    FULL = "full"
    MODELED = "modeled"
    NONE = "none"


class AdversaryModel(enum.Enum):
    """The failure-mode hierarchy of Definition A.5 (honest < omission < ROD < byzantine)."""

    HONEST = "honest"
    GENERAL_OMISSION = "general_omission"
    ROD = "rod"  # replay / omit / delay
    BYZANTINE = "byzantine"


# Wire-format overhead (bytes) the MODELED channel adds on top of the
# serialized plaintext: nonce (16) + truncated MAC tag (16) + length
# framing (8).  Calibrated so a MODELED ERB INIT lands near the ~100 B and
# an ACK near the ~80 B the paper reports in Section 6.1.  (FULL channels
# compute their true byte size instead.)
CHANNEL_OVERHEAD_BYTES = 40


@dataclass
class SimulationConfig:
    """Parameters for one simulated P2P network.

    Attributes:
        n: network size N (S1).
        t: upper bound on byzantine peers (S4).  Defaults to the maximum
            the protocol tolerates: ``(n - 1) // 2``.
        delta: one-way message delay bound in seconds (S3); a round is
            ``2 * delta``.
        bandwidth_bytes_per_s: capacity of the shared link all nodes sit
            behind (the DeterLab testbed's 128 MB/s).  ``None`` disables
            the bandwidth model and every round takes exactly ``2*delta``.
        channel_security: FULL or MODELED blinded channels.
        ack_threshold: minimum number of ACKs a multicast must collect;
            below it the sender enclave executes Halt (P4).  Algorithm 2
            uses ``t``.  ``None`` selects ``t`` at runtime.
        seed: master seed; every enclave RNG and adversary coin forks off
            this.
        random_bits: width k of random values in {0,1}^k exchanged by the
            RNG protocols.
        tracer: optional :class:`repro.obs.tracer.Tracer` the engine and
            protocols emit structured events into.  ``None`` (the
            default) runs untraced at zero overhead.
        timing: optional :class:`repro.obs.timing.TimingCollector` the
            engine attributes per-round wall clock into (phase buckets,
            per-shard busy/idle on the parallel path).  ``None`` (the
            default) runs untimed at zero overhead, like the tracer.
            Purely observational: results never depend on it.
        workers: number of OS processes the round engine may shard node
            execution across.  ``1`` (the default) runs everything in
            process; values above 1 enable the sharded parallel path for
            honest MODELED/NONE runs (adversarial, traced-FULL and
            heterogeneous runs fall back to the serial engine, which is
            byte-identical).  Purely a performance knob: results never
            depend on it.
    """

    n: int
    t: int = -1
    delta: float = 1.0
    bandwidth_bytes_per_s: float = 128 * 1024 * 1024
    channel_security: ChannelSecurity = ChannelSecurity.MODELED
    ack_threshold: int = -1
    seed: int = 0
    random_bits: int = 128
    extra: dict = field(default_factory=dict)
    tracer: Optional["Tracer"] = None
    workers: int = 1
    timing: Optional["TimingCollector"] = None

    def __post_init__(self) -> None:
        if self.n < 1:
            raise ConfigurationError(f"network size must be >= 1, got {self.n}")
        if self.t < 0:
            self.t = (self.n - 1) // 2
        if self.t >= self.n and self.n > 1:
            raise ConfigurationError(
                f"byzantine bound t={self.t} must be < n={self.n}"
            )
        if self.ack_threshold < 0:
            self.ack_threshold = self.t
        if self.delta <= 0:
            raise ConfigurationError(f"delta must be positive, got {self.delta}")
        if self.random_bits < 1:
            raise ConfigurationError("random_bits must be >= 1")
        if self.workers < 1:
            raise ConfigurationError(
                f"workers must be >= 1, got {self.workers}"
            )

    @property
    def round_seconds(self) -> float:
        """Nominal duration of one synchronous round (S3)."""
        return 2.0 * self.delta

    @property
    def honest_majority(self) -> bool:
        """Whether the configured t satisfies the N >= 2t+1 bound of ERB."""
        return self.n >= 2 * self.t + 1

    @property
    def honest_supermajority(self) -> bool:
        """Whether t satisfies the N >= 3t bound of the optimized ERNG."""
        return self.t * 3 <= self.n

    def require_erb_bound(self) -> None:
        if not self.honest_majority:
            raise ConfigurationError(
                f"ERB requires N >= 2t+1; got N={self.n}, t={self.t}"
            )

    def require_erng_opt_bound(self) -> None:
        if not self.honest_supermajority:
            raise ConfigurationError(
                f"optimized ERNG requires t <= N/3; got N={self.n}, t={self.t}"
            )
