"""Exception hierarchy for the repro library.

All library errors derive from :class:`ReproError` so callers can catch a
single base class.  Channel-level rejections (integrity, replay, staleness)
deliberately do *not* abort a simulation: per the paper's reduction
(Theorem A.2) a rejected message is equivalent to an omitted one, so the
transport layer catches them and records an omission instead.
"""


class ReproError(Exception):
    """Base class for every error raised by :mod:`repro`."""


class ConfigurationError(ReproError):
    """A simulation or protocol was configured with inconsistent parameters."""


class SerializationError(ReproError):
    """A byte-string could not be decoded back into a message value."""


class ProtocolError(ReproError):
    """A protocol state machine was driven in an unsupported way."""


class CryptoError(ReproError):
    """A cryptographic operation failed (bad key sizes, malformed input)."""


class IntegrityError(CryptoError):
    """MAC verification or signature verification failed.

    At the channel layer this is the concrete signal behind attack A2
    (message forgery): a forged ciphertext fails verification and the
    receiving enclave treats the message as omitted.
    """


class ReplayError(CryptoError):
    """A message carried a stale sequence number (attack A5)."""


class StaleRoundError(CryptoError):
    """A message carried a round number other than the current one (attack A4)."""


class AttestationError(CryptoError):
    """A remote-attestation quote failed verification (wrong program or key)."""


class EnclaveHaltedError(ProtocolError):
    """An operation was attempted on an enclave whose state is ``HALTED``.

    Raised when the untrusted OS layer tries to keep driving an enclave that
    executed :func:`Halt` (halt-on-divergence, property P4).
    """
