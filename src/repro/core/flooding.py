"""Flood-ERB: reliable broadcast over sparse topologies (Appendix G, S5).

The paper's model assumes a full mesh (S5) but notes the relaxation: "the
direct point-to-point broadcast in our protocol can be replaced with a
flooding algorithm" as long as the graph is connected (an expander keeps
the diameter logarithmic).  This variant implements exactly that:

* every protocol message is *flooded*: the first time a node sees a given
  (origin, kind) it re-multicasts it to its topology neighbours at the
  next round, so a value crosses the network in at most ``diameter``
  rounds rather than one;
* the acceptance rule is unchanged — ``N - t`` distinct *origins* of
  ECHO — but the round budget gains a diameter allowance:
  ``t + 2 + hop_slack`` rounds.

Per-hop ACKs would conflate link fan-out with the global quorum on sparse
graphs, so flood multicasts do not request ACKs; halt-on-divergence is a
full-mesh optimization (the paper introduces it in the S5 setting) and is
simply unavailable here — omissions are still masked by path redundancy.
"""

from __future__ import annotations

import math
from typing import Dict, Optional, Set, Tuple

from repro.common.config import SimulationConfig
from repro.common.errors import ConfigurationError
from repro.common.types import MessageType, NodeId, ProtocolMessage
from repro.net.simulator import RunResult, SynchronousNetwork
from repro.net.topology import Topology
from repro.sgx.program import EnclaveProgram


class FloodErbProgram(EnclaveProgram):
    """ERB with flooding relays, for connected sparse graphs."""

    PROGRAM_NAME = "flood-erb"
    PROGRAM_VERSION = "1"

    def __init__(
        self,
        node_id: NodeId,
        initiator: NodeId,
        n: int,
        t: int,
        hop_slack: int,
        seq: int = 1,
        message: object = None,
        instance: str = "flood-erb",
    ) -> None:
        super().__init__()
        self.node_id = node_id
        self.initiator = initiator
        self.n = n
        self.t = t
        self.hop_slack = hop_slack
        self.seq = seq
        self.broadcast_message = message
        self.instance = instance
        self.m_hat: object = _UNSET
        self.echo_origins: Set[NodeId] = set()
        # (kind, origin) pairs already relayed — flood each value once.
        self._relayed: Set[Tuple[str, NodeId]] = set()

    @property
    def round_bound(self) -> int:
        return self.t + 2 + self.hop_slack

    @property
    def accept_quorum(self) -> int:
        return self.n - self.t

    # ------------------------------------------------------------------
    def on_round_begin(self, ctx) -> None:
        if ctx.round == 1 and ctx.node_id == self.initiator:
            self.m_hat = self.broadcast_message
            self.echo_origins.add(self.initiator)
            self._relayed.add(("INIT", self.initiator))
            ctx.multicast(
                self._flood_message(MessageType.INIT, self.initiator,
                                    self.broadcast_message, ctx.round),
                expect_acks=False,
            )
            self._check_accept(ctx)

    def on_message(self, ctx, sender: NodeId, message: ProtocolMessage) -> None:
        if message.instance != self.instance or message.seq != self.seq:
            return
        origin = message.initiator if message.type is MessageType.INIT else (
            message.payload[0] if isinstance(message.payload, tuple) else None
        )
        if origin is None:
            return
        if message.type is MessageType.INIT:
            value = message.payload
            if origin != self.initiator:
                return
            self._learn_value(ctx, value)
            self._relay_once(ctx, "INIT", origin, message)
        elif message.type is MessageType.ECHO:
            _, value = message.payload
            if self.m_hat is not _UNSET and value != self.m_hat:
                return
            self._learn_value(ctx, value)
            self.echo_origins.add(origin)
            self._relay_once(ctx, "ECHO", origin, message)
            self._check_accept(ctx)

    def on_round_end(self, ctx) -> None:
        self._check_accept(ctx)
        if ctx.round >= self.round_bound and not self.has_output:
            self._accept(ctx, None)

    def on_protocol_end(self, ctx) -> None:
        if not self.has_output:
            self._accept(ctx, None)

    # ------------------------------------------------------------------
    def _learn_value(self, ctx, value: object) -> None:
        if self.m_hat is _UNSET:
            self.m_hat = value
            self.echo_origins.add(self.initiator)
            self.echo_origins.add(ctx.node_id)
            # Originate our own echo flood (once).
            if ("ECHO", ctx.node_id) not in self._relayed:
                self._relayed.add(("ECHO", ctx.node_id))
                ctx.multicast(
                    self._flood_message(
                        MessageType.ECHO, ctx.node_id, value, 0
                    ),
                    expect_acks=False,
                )

    def _relay_once(
        self, ctx, kind: str, origin: NodeId, message: ProtocolMessage
    ) -> None:
        key = (kind, origin)
        if key in self._relayed:
            return
        self._relayed.add(key)
        if kind == "INIT":
            relay = self._flood_message(
                MessageType.INIT, self.initiator, message.payload, 0
            )
        else:
            relay = self._flood_message(
                MessageType.ECHO, origin, message.payload[1], 0
            )
        ctx.multicast(relay, expect_acks=False)

    def _flood_message(
        self, mtype: MessageType, origin: NodeId, value: object, rnd: int
    ) -> ProtocolMessage:
        payload = value if mtype is MessageType.INIT else (origin, value)
        return ProtocolMessage(
            type=mtype,
            initiator=self.initiator,
            seq=self.seq,
            payload=payload,
            rnd=rnd,
            instance=self.instance,
        )

    def _check_accept(self, ctx) -> None:
        if not self.has_output and len(self.echo_origins) >= self.accept_quorum:
            self._accept(ctx, self.m_hat)


class _Unset:
    __slots__ = ()


_UNSET = _Unset()


def default_hop_slack(n: int) -> int:
    """Diameter allowance: 2·⌈log₂N⌉ covers expanders with margin."""
    return 2 * max(1, math.ceil(math.log2(max(2, n))))


def run_flood_erb(
    config: SimulationConfig,
    topology: Topology,
    initiator: NodeId,
    message: object,
    behaviors: Optional[Dict[NodeId, object]] = None,
    hop_slack: Optional[int] = None,
) -> RunResult:
    """Reliable broadcast over a sparse connected topology via flooding."""
    config.require_erb_bound()
    if not topology.is_connected():
        raise ConfigurationError(
            "flooding requires a connected topology (Appendix G)"
        )
    slack = hop_slack if hop_slack is not None else default_hop_slack(config.n)

    def factory(node_id: NodeId) -> FloodErbProgram:
        return FloodErbProgram(
            node_id=node_id,
            initiator=initiator,
            n=config.n,
            t=config.t,
            hop_slack=slack,
            message=message if node_id == initiator else None,
        )

    network = SynchronousNetwork(
        config, factory, behaviors=behaviors, topology=topology
    )
    return network.run(max_rounds=config.t + 2 + slack)
