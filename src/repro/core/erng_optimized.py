"""Optimized ERNG (Algorithm 6): cluster-sampled random number generation.

Requires ``t <= N/3``.  Three conceptual steps:

1. **Cluster selection** (round 1) — every node draws a number in
   ``{0..N/(2γ)-1}`` from enclave randomness; those who draw 0 multicast
   CHOSEN.  Lemma F.1: with probability ``1 - negl(γ)`` the resulting
   cluster holds more than γ honest and fewer than γ byzantine nodes.
2. **ERB instances** (rounds 2..γ+2) — cluster members draw a second coin
   in ``{0..γ'-1}`` (γ' = √γ, Lemma F.2); the ~√γ winners each reliably
   broadcast a random value *within the cluster*.
3. **Selection decision** (round γ+4) — members multicast their agreed set
   ``M`` as FINAL to everyone; a node accepts once it holds ``γ+1``
   identical sets, and outputs their XOR.

Communication: ``O(γ²)`` CHOSEN + ``O(γ² √γ)`` ERB + ``O(Nγ)`` FINAL =
``O(N log N)`` with ``γ = Θ(log N)`` (Table 2).

For networks too small for the sampling bounds, the paper's evaluation
fixes the cluster to ``2N/3`` of the network and lets every member
initiate; that is ``ClusterConfig(mode="fixed_fraction")`` here, and is
what the Fig. 3b benchmark uses (~60 % traffic reduction at N = 512).

Early stopping (on by default, disable with
``config.extra["erng_early_stop"] = False`` for adversarial runs): a
member sends FINAL as soon as every ERB instance it has observed has been
quiet-and-decided for a full round, which makes honest termination
constant-round as in Fig. 2b.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.common.config import SimulationConfig
from repro.common.errors import ConfigurationError
from repro.common.types import MessageType, NodeId, ProtocolMessage
from repro.core.erb import ErbCore
from repro.core.erng import xor_fold
from repro.net.simulator import RunResult, SynchronousNetwork
from repro.sgx.program import EnclaveProgram


@dataclass(frozen=True)
class ClusterConfig:
    """How the representative cluster is formed.

    ``sampled`` — the paper's Algorithm 6 coin with parameter γ
    (default ``max(4, ceil(log2 N))``) and second-phase coin γ' = √γ.
    ``fixed_fraction`` — the small-N fallback used in the evaluation:
    the first ``fraction * N`` nodes form the cluster and all of them
    initiate.
    """

    mode: str = "sampled"
    gamma: Optional[int] = None
    fraction: float = 2.0 / 3.0
    final_threshold: Optional[int] = None

    def resolved_gamma(self, n: int) -> int:
        if self.gamma is not None:
            return self.gamma
        return max(4, math.ceil(math.log2(max(2, n))))

    def validate(self, n: int) -> None:
        if self.mode not in ("sampled", "fixed_fraction"):
            raise ConfigurationError(f"unknown cluster mode {self.mode!r}")
        if self.mode == "fixed_fraction" and not 0 < self.fraction <= 1:
            raise ConfigurationError("fraction must be in (0, 1]")
        if self.mode == "sampled" and self.resolved_gamma(n) < 1:
            raise ConfigurationError("gamma must be >= 1")


class OptimizedErngProgram(EnclaveProgram):
    """Algorithm 6 at one node."""

    PROGRAM_NAME = "erng-optimized"
    PROGRAM_VERSION = "1"

    #: This is the protocol sparse scheduling exists for: after round 1's
    #: cluster coin, only members stay spontaneously active (membership
    #: echo, initiation, quiet-round bookkeeping, FINAL release) — the
    #: O(N) non-members are purely reactive, decided by FINAL deliveries.
    SPARSE_AWARE = True

    def __init__(
        self,
        node_id: NodeId,
        n: int,
        t: int,
        cluster: ClusterConfig,
        random_bits: int = 128,
        early_stop: bool = True,
    ) -> None:
        super().__init__()
        self.node_id = node_id
        self.n = n
        self.t = t
        self.cluster_config = cluster
        self.random_bits = random_bits
        self.early_stop = early_stop
        self.gamma = cluster.resolved_gamma(n)

        self.is_member = False
        self.is_initiator = False
        self.s_chosen: set = set()
        self.cores: Dict[str, ErbCore] = {}
        self.my_set: Optional[Tuple[int, ...]] = None
        self.final_sent = False
        # FINAL votes: canonical set -> distinct senders
        self._final_votes: Dict[Tuple[int, ...], set] = {}
        self._quiet_rounds = 0

    # ------------------------------------------------------------------
    @property
    def round_bound(self) -> int:
        """Algorithm 6 terminates after γ + 4 rounds; we add one
        membership-confirmation round (see ``_confirm_membership``), so
        γ + 5 — still O(log N)."""
        return self.gamma + 5

    def _final_threshold(self) -> int:
        # The threshold must be a *fixed* function of the public
        # parameters, never of the locally observed cluster: a byzantine
        # member that multicasts its CHOSEN to only part of the network
        # would otherwise split honest nodes onto different thresholds.
        if self.cluster_config.final_threshold is not None:
            return self.cluster_config.final_threshold
        if self.cluster_config.mode == "fixed_fraction":
            cutoff = max(1, math.ceil(self.cluster_config.fraction * self.n))
            return cutoff // 2 + 1
        return self.gamma + 1

    def _cluster_fault_bound(self) -> int:
        size = len(self.s_chosen)
        return max(0, (size - 1) // 2)

    @staticmethod
    def _instance(initiator: NodeId) -> str:
        return f"crng-{initiator}"

    # ------------------------------------------------------------------
    def on_round_begin(self, ctx) -> None:
        if ctx.round == 1:
            self._select_cluster(ctx)
        elif ctx.round == 2 and self.is_member:
            self._confirm_membership(ctx)
        elif ctx.round == 3 and self.is_member:
            self._maybe_initiate(ctx)
        if (
            self.is_member
            and not self.final_sent
            and (
                ctx.round == self.round_bound
                or (
                    self.early_stop
                    and ctx.round >= 5
                    and self.cores
                    and self._quiet_rounds >= 1
                )
            )
        ):
            self._send_final(ctx)

    def _select_cluster(self, ctx) -> None:
        if self.cluster_config.mode == "fixed_fraction":
            cutoff = max(1, math.ceil(self.cluster_config.fraction * self.n))
            self.is_member = self.node_id < cutoff
        else:
            span = max(1, self.n // (2 * self.gamma))
            self.is_member = ctx.rdrand.random_range(span) == 0
        if self.is_member:
            self.s_chosen.add(self.node_id)
            tracer = getattr(ctx, "tracer", None)
            if tracer is not None and tracer.enabled:
                tracer.protocol(
                    "cluster_elected",
                    node=self.node_id,
                    rnd=ctx.round,
                    instance="erng-opt",
                    mode=self.cluster_config.mode,
                    gamma=self.gamma,
                )
            chosen = ProtocolMessage(
                type=MessageType.CHOSEN,
                initiator=self.node_id,
                seq=1,
                payload=None,
                rnd=ctx.round,
                instance="erng-opt",
            )
            ctx.multicast(chosen)

    def _confirm_membership(self, ctx) -> None:
        """Round 2: members echo their observed cluster (a hardening the
        paper's pseudo-code omits).

        Algorithm 6 has every node build ``S_chosen`` from the round-1
        CHOSEN multicasts directly; a byzantine member's OS can deliver
        its CHOSEN to only *part* of the network, splitting honest views
        of the cluster and thereby (our fuzzer found) honest outputs.
        Since the claim below is produced inside the enclave it cannot
        lie — the OS can only omit it — so taking the union of received
        member claims makes every id seen by at least one honest member
        visible to everyone.  The residual gap (an id announced
        exclusively to byzantine members whose claims are then delivered
        selectively) requires a colluding byzantine pair and can only
        add/remove *byzantine* instances; it is documented in
        EXPERIMENTS.md.  Costs one round and O(N·γ) bytes — asymptotics
        unchanged.
        """
        claim = ProtocolMessage(
            type=MessageType.CHOSEN,
            initiator=self.node_id,
            seq=2,
            payload=tuple(sorted(self.s_chosen)),
            rnd=ctx.round,
            instance="erng-opt",
        )
        ctx.multicast(claim)

    def _maybe_initiate(self, ctx) -> None:
        if self.cluster_config.mode == "fixed_fraction":
            self.is_initiator = True
        else:
            gamma2 = max(1, math.isqrt(self.gamma))
            self.is_initiator = ctx.rdrand.random_range(gamma2) == 0
        if self.is_initiator:
            tracer = getattr(ctx, "tracer", None)
            if tracer is not None and tracer.enabled:
                tracer.protocol(
                    "cluster_initiator",
                    node=self.node_id,
                    rnd=ctx.round,
                    instance="erng-opt",
                    cluster_size=len(self.s_chosen),
                )
            instance = self._instance(self.node_id)
            core = self._core_for(instance, self.node_id)
            core.begin(ctx, ctx.rdrand.random_bits(self.random_bits))

    def _core_for(self, instance: str, initiator: NodeId) -> ErbCore:
        core = self.cores.get(instance)
        if core is None:
            fault = self._cluster_fault_bound()
            core = ErbCore(
                instance=instance,
                initiator=initiator,
                expected_seq=1,
                group_size=len(self.s_chosen),
                fault_bound=fault,
                participants=sorted(self.s_chosen),
                ack_threshold=fault,
            )
            self.cores[instance] = core
            self._quiet_rounds = 0
        return core

    # ------------------------------------------------------------------
    def on_message(self, ctx, sender: NodeId, message: ProtocolMessage) -> None:
        if message.type is MessageType.CHOSEN:
            if message.rnd != ctx.round:
                return  # stale announcement (P5): treat as omitted
            if ctx.round == 1 and message.payload is None:
                ctx.acknowledge(sender, message)
                self.s_chosen.add(message.initiator)
            elif ctx.round == 2 and isinstance(message.payload, tuple):
                # A membership claim: valid only if the (enclave-honest)
                # sender counts itself a member.
                if sender == message.initiator and sender in message.payload:
                    ctx.acknowledge(sender, message)
                    self.s_chosen.update(
                        node for node in message.payload
                        if isinstance(node, int) and 0 <= node < self.n
                    )
            return
        if message.type is MessageType.FINAL:
            self._on_final(ctx, sender, message)
            return
        if message.instance.startswith("crng-") and self.is_member:
            initiator = int(message.instance.split("-", 1)[1])
            if initiator in self.s_chosen:
                core = self._core_for(message.instance, initiator)
                core.handle_message(ctx, sender, message)

    def _on_final(self, ctx, sender: NodeId, message: ProtocolMessage) -> None:
        if sender not in self.s_chosen and self.s_chosen:
            return
        if not isinstance(message.payload, tuple):
            return
        ctx.acknowledge(sender, message)
        if self.has_output:
            return
        key = tuple(message.payload)
        votes = self._final_votes.setdefault(key, set())
        votes.add(sender)
        if len(votes) >= self._final_threshold():
            self._accept(ctx, xor_fold(key))

    # ------------------------------------------------------------------
    def on_round_end(self, ctx) -> None:
        if self.is_member and ctx.round >= 2:
            if self.cores and all(core.decided for core in self.cores.values()):
                self._quiet_rounds += 1
            else:
                self._quiet_rounds = 0
            if ctx.round >= self.gamma + 3:
                for core in self.cores.values():
                    core.finish(ctx)

    def on_protocol_end(self, ctx) -> None:
        if not self.has_output:
            # Threshold never reached: accept ⊥ (consistent fallback).
            self._accept(ctx, None)

    def sparse_wake_round(self, rnd: int):
        # Members tick every round until their FINAL is out (the
        # quiet-round counter in on_round_end advances on rounds, not
        # deliveries); after that their residual end-hook bookkeeping is
        # unobservable.  Non-members are reactive after the round-1 coin:
        # they output on FINAL deliveries and accept ⊥ at protocol end.
        if self.is_member and not self.final_sent:
            return rnd + 1
        return None

    def _send_final(self, ctx) -> None:
        for core in self.cores.values():
            if not core.decided:
                core.finish(ctx)
        values = sorted(
            core.output for core in self.cores.values() if core.output is not None
        )
        self.my_set = tuple(values)
        self.final_sent = True
        tracer = getattr(ctx, "tracer", None)
        if tracer is not None and tracer.enabled:
            tracer.protocol(
                "final_sent",
                node=self.node_id,
                rnd=ctx.round,
                instance="erng-opt",
                set_size=len(self.my_set),
                threshold=self._final_threshold(),
            )
        final = ProtocolMessage(
            type=MessageType.FINAL,
            initiator=self.node_id,
            seq=1,
            payload=self.my_set,
            rnd=ctx.round,
            instance="erng-opt",
        )
        ctx.multicast(final)
        # Count our own set as a vote (we trust our own enclave).
        votes = self._final_votes.setdefault(self.my_set, set())
        votes.add(self.node_id)
        if len(votes) >= self._final_threshold() and not self.has_output:
            self._accept(ctx, xor_fold(self.my_set))


def run_optimized_erng(
    config: SimulationConfig,
    cluster: Optional[ClusterConfig] = None,
    behaviors: Optional[Dict[NodeId, object]] = None,
    topology=None,
) -> RunResult:
    """Build a network and execute one optimized-ERNG run."""
    cluster = cluster or ClusterConfig()
    cluster.validate(config.n)
    config.require_erng_opt_bound()
    early_stop = bool(config.extra.get("erng_early_stop", True))

    def factory(node_id: NodeId) -> OptimizedErngProgram:
        return OptimizedErngProgram(
            node_id=node_id,
            n=config.n,
            t=config.t,
            cluster=cluster,
            random_bits=config.random_bits,
            early_stop=early_stop,
        )

    network = SynchronousNetwork(
        config, factory, behaviors=behaviors, topology=topology
    )
    gamma = cluster.resolved_gamma(config.n)
    return network.run(max_rounds=gamma + 5)
