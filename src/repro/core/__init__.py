"""The paper's primary contribution: ERB and ERNG.

* :mod:`repro.core.erb` — Enclaved Reliable Broadcast (Algorithm 2),
  as a reusable per-instance core plus a standalone program;
* :mod:`repro.core.erng` — unoptimized ERNG (Algorithm 3): N concurrent
  ERB instances, XOR of the agreed set;
* :mod:`repro.core.erng_optimized` — optimized ERNG (Algorithm 6):
  representative-cluster sampling, ERB inside the cluster, FINAL sets;
* :mod:`repro.core.strawman` — the attackable strawman (Algorithm 1),
  kept for the Section 2.3 attack demonstrations;
* :mod:`repro.core.properties` — the P1-P6 property checklist mapped to
  the mechanisms that enforce each;
* :mod:`repro.core.sanitization` — the Appendix D churn model.

High-level convenience runners (`run_erb`, `run_erng`, ...) build the
network, execute the protocol, and return a :class:`RunResult`.
"""

from repro.core.agreement import (
    InteractiveConsistencyProgram,
    majority_rule,
    median_rule,
    run_byzantine_agreement,
    run_interactive_consistency,
)
from repro.core.churn import ChurnDriver, ChurnReport, IntermittentOmission
from repro.core.erb import ErbCore, ErbProgram, run_erb
from repro.core.flooding import FloodErbProgram, run_flood_erb
from repro.core.erng import ErngProgram, run_erng
from repro.core.erng_optimized import ClusterConfig, OptimizedErngProgram, run_optimized_erng
from repro.core.properties import PROPERTIES, Property
from repro.core.sanitization import SanitizationModel, SanitizationOutcome
from repro.core.strawman import StrawmanBroadcastProgram, StrawmanRngProgram

__all__ = [
    "ChurnDriver",
    "ChurnReport",
    "ClusterConfig",
    "ErbCore",
    "FloodErbProgram",
    "InteractiveConsistencyProgram",
    "IntermittentOmission",
    "majority_rule",
    "median_rule",
    "run_byzantine_agreement",
    "run_flood_erb",
    "run_interactive_consistency",
    "ErbProgram",
    "ErngProgram",
    "OptimizedErngProgram",
    "PROPERTIES",
    "Property",
    "SanitizationModel",
    "SanitizationOutcome",
    "StrawmanBroadcastProgram",
    "StrawmanRngProgram",
    "run_erb",
    "run_erng",
    "run_optimized_erng",
]
