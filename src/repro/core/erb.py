"""ERB — Enclaved Reliable Broadcast (Algorithm 2).

The protocol, for an initiator ``id_init`` broadcasting ``m`` with sequence
number ``seq_init``:

* **Initialization** — round 1: the initiator multicasts
  ``<INIT, id_init, seq_init, m, 1>`` and adds itself to ``S_echo``.
* **Echo** — a node receiving a *valid* INIT or ECHO for the first time
  acknowledges it, stores ``m``, and multicasts
  ``<ECHO, id_init, seq_init, m, rnd+1>`` at the start of the next round
  (the ``Wait(rnd)`` in the pseudocode).  Valid means: the embedded round
  equals the receiver's current round (lockstep, P5) and the sequence
  number equals the expected one (freshness, P6).  Invalid messages are
  silently treated as omitted — no ACK.
* **Decision** — once ``|S_echo| >= N - t`` distinct senders are known the
  node accepts ``m``; if that never happens by the end of round ``t+2`` it
  accepts ``⊥``.
* **Halt-on-divergence** — every ``Multicast`` must collect at least ``t``
  ACKs, otherwise the sender's enclave executes ``Halt`` and the node
  churns out of the network (P4).  The simulator engine enforces this for
  every multicast automatically.

Complexities (Theorem C.1): round ``min{f+2, t+2}``, communication
``O(N²)`` — the properties P1-P6 remove the need for signatures or
per-round liveness broadcasts that push classic protocols to ``O(N³)``.

:class:`ErbCore` carries the per-instance state so the ERNG protocols can
multiplex many concurrent broadcasts; :class:`ErbProgram` wraps a single
core as a runnable enclave program.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from repro.common.config import SimulationConfig
from repro.common.types import MessageType, NodeId, ProtocolMessage
from repro.net.simulator import RunResult, SynchronousNetwork
from repro.sgx.program import EnclaveProgram


class _Unset:
    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "<unset>"


_UNSET = _Unset()

#: The distinguished "no message" output (the paper's ⊥).
BOTTOM = None


class ErbCore:
    """State machine for one ERB instance at one node.

    Parameters:
        instance: tag multiplexing this broadcast over the shared channels.
        initiator: the broadcasting node's id.
        expected_seq: the sequence number all peers expect for this
            instance (exchanged during the setup phase; P6).
        group_size: number of participants (N, or the cluster size when
            run inside the optimized ERNG).
        fault_bound: tolerated byzantine count t within the group.
        participants: explicit participant set for cluster runs; ``None``
            means the whole network (topology neighbours).
        ack_threshold: minimum ACKs per multicast before halting; defaults
            to ``fault_bound`` per Algorithm 2.
    """

    def __init__(
        self,
        instance: str,
        initiator: NodeId,
        expected_seq: int,
        group_size: int,
        fault_bound: int,
        participants: Optional[Sequence[NodeId]] = None,
        ack_threshold: Optional[int] = None,
    ) -> None:
        self.instance = instance
        self.initiator = initiator
        self.expected_seq = expected_seq
        self.group_size = group_size
        self.fault_bound = fault_bound
        self.participants: Optional[Tuple[NodeId, ...]] = (
            tuple(participants) if participants is not None else None
        )
        # None defers to the simulation-wide config.ack_threshold (which
        # defaults to t, Algorithm 2's rule); cluster runs pass their own.
        self.ack_threshold = ack_threshold
        self.m_hat: object = _UNSET       # the paper's m̂ (⊥ until first value)
        self.s_echo: set = set()          # S_echo: distinct known senders
        self.output: object = _UNSET
        self.decided_round: Optional[int] = None

    # ------------------------------------------------------------------
    @property
    def accept_quorum(self) -> int:
        """``N - t`` distinct senders needed to accept."""
        return self.group_size - self.fault_bound

    @property
    def decided(self) -> bool:
        return self.output is not _UNSET

    # ------------------------------------------------------------------
    def begin(self, ctx, payload: object) -> None:
        """Initiator's first step: multicast INIT (call in round begin)."""
        if ctx.node_id != self.initiator:
            raise ValueError("only the initiator may begin a broadcast")
        self.m_hat = payload
        self.s_echo.add(self.initiator)
        init = ProtocolMessage(
            type=MessageType.INIT,
            initiator=self.initiator,
            seq=self.expected_seq,
            payload=payload,
            rnd=ctx.round,
            instance=self.instance,
        )
        ctx.multicast(
            init, targets=self.participants, threshold=self.ack_threshold
        )
        self._check_accept(ctx)

    def handle_message(self, ctx, sender: NodeId, message: ProtocolMessage) -> bool:
        """Process one delivered INIT/ECHO; returns False if not ours."""
        if message.instance != self.instance:
            return False
        if message.type is MessageType.INIT:
            self._on_init(ctx, sender, message)
            return True
        if message.type is MessageType.ECHO:
            self._on_echo(ctx, sender, message)
            return True
        return False

    def finish(self, ctx) -> None:
        """Deadline (end of round t+2): accept ⊥ if the quorum never came."""
        if not self.decided:
            self.output = BOTTOM
            self.decided_round = ctx.round

    # ------------------------------------------------------------------
    def _valid(self, ctx, message: ProtocolMessage) -> bool:
        # Lockstep round check (P5) + sequence freshness (P6) + binding to
        # this instance's initiator.  A failed check means no ACK: the
        # message is treated exactly as if it had been omitted.
        return (
            message.rnd == ctx.round
            and message.seq == self.expected_seq
            and message.initiator == self.initiator
        )

    def _on_init(self, ctx, sender: NodeId, message: ProtocolMessage) -> None:
        if sender != self.initiator or not self._valid(ctx, message):
            return
        ctx.acknowledge(sender, message)
        if self.m_hat is _UNSET:
            self.m_hat = message.payload
            self.s_echo.add(self.initiator)
            self.s_echo.add(ctx.node_id)
            self._stage_echo(ctx, message.payload)
        self._check_accept(ctx)

    def _on_echo(self, ctx, sender: NodeId, message: ProtocolMessage) -> None:
        if not self._valid(ctx, message):
            return
        if self.m_hat is not _UNSET and message.payload != self.m_hat:
            # Impossible under blinded channels (forgery is rejected at the
            # channel); defensive for NONE-mode misuse.
            return
        ctx.acknowledge(sender, message)
        if self.m_hat is _UNSET:
            self.m_hat = message.payload
            self.s_echo.add(ctx.node_id)
            self._stage_echo(ctx, message.payload)
        self.s_echo.add(sender)
        self._check_accept(ctx)

    def _stage_echo(self, ctx, payload: object) -> None:
        echo = ProtocolMessage(
            type=MessageType.ECHO,
            initiator=self.initiator,
            seq=self.expected_seq,
            payload=payload,
            rnd=0,  # stamped by the engine at transmission (next round)
            instance=self.instance,
        )
        ctx.multicast(
            echo, targets=self.participants, threshold=self.ack_threshold
        )

    def _check_accept(self, ctx) -> None:
        if not self.decided and len(self.s_echo) >= self.accept_quorum:
            self.output = self.m_hat
            self.decided_round = ctx.round
            tracer = getattr(ctx, "tracer", None)
            if tracer is not None and tracer.enabled:
                tracer.protocol(
                    "erb_accept",
                    node=ctx.node_id,
                    rnd=ctx.round,
                    instance=self.instance,
                    senders=len(self.s_echo),
                    quorum=self.accept_quorum,
                )


class ErbProgram(EnclaveProgram):
    """A single reliable broadcast as a runnable enclave program."""

    PROGRAM_NAME = "erb"
    PROGRAM_VERSION = "1"

    #: Spontaneous activity is round 1 (initiator's INIT) and the round
    #: bound's ⊥ deadline; everything in between is delivery-driven
    #: (echoes and decisions happen in ``on_message``, and the engine
    #: re-wakes delivered nodes for the round-end publish).
    SPARSE_AWARE = True

    def __init__(
        self,
        node_id: NodeId,
        initiator: NodeId,
        n: int,
        t: int,
        seq: int = 1,
        message: object = None,
        instance: str = "erb",
    ) -> None:
        super().__init__()
        self.node_id = node_id
        self.initiator = initiator
        self.n = n
        self.t = t
        self.broadcast_message = message
        self.core = ErbCore(
            instance=instance,
            initiator=initiator,
            expected_seq=seq,
            group_size=n,
            fault_bound=t,
        )

    @property
    def round_bound(self) -> int:
        """Worst-case rounds: t + 2."""
        return self.t + 2

    def on_round_begin(self, ctx) -> None:
        if ctx.round == 1 and ctx.node_id == self.initiator:
            self.core.begin(ctx, self.broadcast_message)
            self._maybe_publish(ctx)

    def on_message(self, ctx, sender: NodeId, message: ProtocolMessage) -> None:
        if self.core.handle_message(ctx, sender, message):
            self._maybe_publish(ctx)

    def on_round_end(self, ctx) -> None:
        if ctx.round >= self.round_bound:
            self.core.finish(ctx)
        self._maybe_publish(ctx)

    def on_protocol_end(self, ctx) -> None:
        self.core.finish(ctx)
        self._maybe_publish(ctx)

    def sparse_wake_round(self, rnd: int):
        if self.has_output:
            return None
        return max(rnd + 1, self.round_bound)

    def _maybe_publish(self, ctx) -> None:
        if self.core.decided and not self.has_output:
            self._accept(ctx, self.core.output)


def run_erb(
    config: SimulationConfig,
    initiator: NodeId,
    message: object,
    behaviors: Optional[Dict[NodeId, object]] = None,
    seq: int = 1,
    topology=None,
) -> RunResult:
    """Build a network and execute one ERB broadcast to completion."""
    config.require_erb_bound()

    def factory(node_id: NodeId) -> ErbProgram:
        return ErbProgram(
            node_id=node_id,
            initiator=initiator,
            n=config.n,
            t=config.t,
            seq=seq,
            message=message if node_id == initiator else None,
        )

    network = SynchronousNetwork(
        config, factory, behaviors=behaviors, topology=topology
    )
    return network.run(max_rounds=config.t + 2)
