"""pb-ERB — sample-based probabilistic reliable broadcast.

The deterministic ERB of Algorithm 2 sends every ECHO to all N peers:
``O(N²)`` messages per broadcast, which is exactly what caps the scaling
experiments near N=8192.  This module trades the deterministic quorum
for an ε-secure sampled one, in the spirit of gossip-based probabilistic
broadcast (Erdős–Rényi gossip for dissemination plus an echo-sample vote
for consistency): every node talks to ``O(log N)`` uniformly sampled
peers, taking a broadcast to ``O(N log N)`` messages and ``O(log N)``
rounds while each correctness property holds except with a configurable
probability ε.

The enclave primitives do the same work here as in deterministic ERB —
and are what makes the *sampled* variant sound against a byzantine OS:

* sample views are drawn from RDRAND inside the enclave (F2), so the
  adversary can neither observe nor bias who gossips to whom (an OS that
  could see the samples could partition the quorum with f ≪ t nodes);
* lockstep rounds (P5) stamp every gossip hop, so stale re-injection is
  rejected exactly as in Algorithm 2;
* messages between enclaves stay blinded (P3), so selective omission
  remains identity-oblivious — the adversary drops edges of a random
  graph it cannot see, which is what the ε analysis assumes.

Protocol, for initiator ``id_init`` broadcasting ``m``:

* **Gossip** — round 1: the initiator multicasts ``<INIT, m>`` to a
  fresh ``g``-sample of its peers.  Any node receiving a *valid* INIT or
  GOSSIP for the first time stores ``m̂ = m`` and forwards
  ``<ECHO, m>`` to its own ``g``-sample in the next round (the
  ``Wait(rnd)`` staging of Algorithm 2), so the informed set grows by a
  factor ≈ ``g`` per round and saturates in ``O(log_g N)`` rounds.
* **Echo vote** — on first receipt each node also sends ``<FINAL, m̂>``
  to an independent ``e``-sample.  A node *accepts* ``m`` once it knows
  ``⌈τ·e⌉`` distinct FINAL senders for its ``m̂`` (its own vote
  included); since every informed peer votes into a uniform sample, a
  node's expected vote count is ≈ ``e`` and the τ-quorum concentrates
  sharply (Chernoff) — see :meth:`PbErbConfig.failure_bound`.
* **Deadline** — a node that never reaches the quorum accepts ⊥ at the
  end of round :meth:`PbErbConfig.resolved_round_bound`.

No per-message ACK quorums: halt-on-divergence (P4) needs ``t`` ACKs per
multicast, which cannot exist on an ``O(log N)``-sample — omission
tolerance comes from the redundancy of independent samples instead, which
is precisely the deterministic-vs-probabilistic trade the ε knobs price.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional, Set

from repro.common.config import SimulationConfig
from repro.common.types import MessageType, NodeId, ProtocolMessage
from repro.net.simulator import RunResult, SynchronousNetwork
from repro.net.topology import Topology
from repro.sgx.program import EnclaveProgram


class _Unset:
    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "<unset>"


_UNSET = _Unset()

#: The distinguished "no message" output (the paper's ⊥).
BOTTOM = None


@dataclass(frozen=True)
class PbErbConfig:
    """ε-security knobs for sample-based probabilistic broadcast.

    ``fanout`` (g) is the gossip sample size, ``echo_sample`` (e) the
    vote sample size; both default to ``sample_factor · ⌈log₂ N⌉``.
    ``threshold`` (τ) is the accepted fraction of the expected vote
    count, and ``epsilon`` the failure-probability budget the knobs are
    tuned against — :meth:`failure_bound` evaluates the analytic union
    bound so callers (and the campaign harness) can check that the
    chosen (g, e, τ) actually buy the configured ε at a given (n, f).
    """

    fanout: Optional[int] = None
    echo_sample: Optional[int] = None
    threshold: float = 0.5
    epsilon: float = 0.05
    sample_factor: int = 3
    round_slack: int = 3

    def __post_init__(self) -> None:
        if not 0.0 < self.threshold < 1.0:
            raise ValueError(f"threshold must be in (0, 1): {self.threshold}")
        if not 0.0 < self.epsilon < 1.0:
            raise ValueError(f"epsilon must be in (0, 1): {self.epsilon}")
        if self.sample_factor < 1:
            raise ValueError("sample_factor must be >= 1")
        if self.round_slack < 1:
            raise ValueError("round_slack must be >= 1")

    # ---- resolved knobs ------------------------------------------------
    def resolved_fanout(self, n: int) -> int:
        if self.fanout is not None:
            return min(self.fanout, n - 1)
        return min(
            n - 1, max(1, self.sample_factor * math.ceil(math.log2(max(2, n))))
        )

    def resolved_echo_sample(self, n: int) -> int:
        if self.echo_sample is not None:
            return min(self.echo_sample, n - 1)
        return self.resolved_fanout(n)

    def echo_quorum(self, n: int) -> int:
        """Distinct FINAL senders needed to accept: ``⌈τ·e⌉``."""
        return max(1, math.ceil(self.threshold * self.resolved_echo_sample(n)))

    def resolved_round_bound(self, n: int) -> int:
        """Gossip saturation (``⌈log_g N⌉``) plus the vote round + slack."""
        g = self.resolved_fanout(n)
        if g >= n - 1:
            saturation = 1
        else:
            saturation = max(1, math.ceil(math.log(max(2, n)) / math.log(g + 1)))
        return saturation + self.round_slack

    # ---- analytics -----------------------------------------------------
    def failure_bound(self, n: int, f: int = 0) -> float:
        """Union Chernoff bound on any honest node missing its quorum.

        With ``H = n - f`` informed honest voters each sampling ``e``
        peers uniformly, a fixed node's vote count is Binomial-like with
        mean ``μ = H·e/(n-1)``; the lower tail below the quorum ``q``
        is ≤ exp(-(μ-q)²/2μ), unioned over all ``n`` nodes.  Returns
        1.0 when the mean does not clear the quorum at all (the knobs
        cannot buy any ε).
        """
        e = self.resolved_echo_sample(n)
        q = self.echo_quorum(n)
        honest = max(0, n - f)
        if n < 2 or honest == 0:
            return 1.0
        mean = honest * e / (n - 1)
        if mean <= q:
            return 1.0
        per_node = math.exp(-((mean - q) ** 2) / (2.0 * mean))
        return min(1.0, n * per_node)


class PbErbProgram(EnclaveProgram):
    """One sample-based probabilistic broadcast at one node."""

    PROGRAM_NAME = "pb-erb"
    PROGRAM_VERSION = "1"

    #: Spontaneous activity is round 1 (the initiator's INIT) and the
    #: round bound's ⊥ deadline; gossip forwards and quorum checks all
    #: happen in ``on_message``, which re-wakes the node for round end.
    SPARSE_AWARE = True

    def __init__(
        self,
        node_id: NodeId,
        initiator: NodeId,
        n: int,
        t: int,
        topology: Topology,
        seq: int = 1,
        message: object = None,
        pb: Optional[PbErbConfig] = None,
        instance: str = "pb-erb",
    ) -> None:
        super().__init__()
        self.node_id = node_id
        self.initiator = initiator
        self.n = n
        self.t = t
        self.topology = topology
        self.expected_seq = seq
        self.broadcast_message = message
        self.pb = pb if pb is not None else PbErbConfig()
        self.instance = instance
        self.fanout = self.pb.resolved_fanout(n)
        self.echo_sample = self.pb.resolved_echo_sample(n)
        self.quorum = self.pb.echo_quorum(n)
        self.m_hat: object = _UNSET
        self.votes: Dict[object, Set[NodeId]] = {}

    @property
    def round_bound(self) -> int:
        return self.pb.resolved_round_bound(self.n)

    # ------------------------------------------------------------------
    def on_round_begin(self, ctx) -> None:
        if ctx.round == 1 and ctx.node_id == self.initiator:
            self.m_hat = self.broadcast_message
            self._gossip(ctx, MessageType.INIT, ctx.round)
            self._vote(ctx, ctx.round)
            self._check_accept(ctx)

    def on_message(self, ctx, sender: NodeId, message: ProtocolMessage) -> None:
        if message.instance != self.instance or not self._valid(ctx, message):
            return
        if message.type is MessageType.INIT and sender != self.initiator:
            return
        if message.type in (MessageType.INIT, MessageType.ECHO):
            if self.m_hat is _UNSET:
                self.m_hat = message.payload
                # Both fan-outs are staged (Wait): they transmit at the
                # start of the next round, stamped by the engine.
                self._gossip(ctx, MessageType.ECHO, 0)
                self._vote(ctx, 0)
                self._check_accept(ctx)
        elif message.type is MessageType.FINAL:
            self.votes.setdefault(message.payload, set()).add(sender)
            self._check_accept(ctx)

    def on_round_end(self, ctx) -> None:
        if ctx.round >= self.round_bound and not self.has_output:
            self._accept(ctx, BOTTOM)

    def on_protocol_end(self, ctx) -> None:
        if not self.has_output:
            self._accept(ctx, BOTTOM)

    def sparse_wake_round(self, rnd: int):
        if self.has_output:
            return None
        return max(rnd + 1, self.round_bound)

    # ------------------------------------------------------------------
    def _valid(self, ctx, message: ProtocolMessage) -> bool:
        # Lockstep round check (P5) + sequence freshness (P6) + binding
        # to this instance's initiator, exactly as deterministic ERB.
        return (
            message.rnd == ctx.round
            and message.seq == self.expected_seq
            and message.initiator == self.initiator
        )

    def _sample(self, ctx, size: int):
        return self.topology.sample_view(
            self.node_id, size, ctx.rdrand.rng()
        )

    def _gossip(self, ctx, mtype: MessageType, rnd: int) -> None:
        targets = self._sample(ctx, self.fanout)
        if not targets:
            return
        ctx.multicast(
            ProtocolMessage(
                type=mtype,
                initiator=self.initiator,
                seq=self.expected_seq,
                payload=self.m_hat,
                rnd=rnd,
                instance=self.instance,
            ),
            targets=targets,
            expect_acks=False,
        )

    def _vote(self, ctx, rnd: int) -> None:
        self.votes.setdefault(self.m_hat, set()).add(self.node_id)
        targets = self._sample(ctx, self.echo_sample)
        if not targets:
            return
        ctx.multicast(
            ProtocolMessage(
                type=MessageType.FINAL,
                initiator=self.initiator,
                seq=self.expected_seq,
                payload=self.m_hat,
                rnd=rnd,
                instance=self.instance,
            ),
            targets=targets,
            expect_acks=False,
        )

    def _check_accept(self, ctx) -> None:
        if self.has_output or self.m_hat is _UNSET:
            return
        senders = self.votes.get(self.m_hat)
        if senders is not None and len(senders) >= self.quorum:
            tracer = getattr(ctx, "tracer", None)
            if tracer is not None and tracer.enabled:
                tracer.protocol(
                    "pb_erb_accept",
                    node=ctx.node_id,
                    rnd=ctx.round,
                    instance=self.instance,
                    senders=len(senders),
                    quorum=self.quorum,
                )
            self._accept(ctx, self.m_hat)


def run_pb_erb(
    config: SimulationConfig,
    initiator: NodeId,
    message: object,
    behaviors: Optional[Dict[NodeId, object]] = None,
    seq: int = 1,
    topology: Optional[Topology] = None,
    pb: Optional[PbErbConfig] = None,
) -> RunResult:
    """Build a network and execute one pb-ERB broadcast to completion."""
    config.require_erb_bound()
    pb = pb if pb is not None else PbErbConfig()
    topo = topology if topology is not None else Topology.full_mesh(config.n)

    def factory(node_id: NodeId) -> PbErbProgram:
        return PbErbProgram(
            node_id=node_id,
            initiator=initiator,
            n=config.n,
            t=config.t,
            topology=topo,
            seq=seq,
            message=message if node_id == initiator else None,
            pb=pb,
        )

    network = SynchronousNetwork(
        config, factory, behaviors=behaviors, topology=topo
    )
    return network.run(max_rounds=pb.resolved_round_bound(config.n))
