"""The six security properties (P1-P6) and where each is enforced.

This registry is executable documentation: every property names the SGX
features (F1-F4) it builds on, the attacks (A1-A5) it defeats, and the
modules that implement it.  Tests assert the registry stays in sync with
the codebase (the named modules exist and export the named symbols), so
the mapping in the paper's Section 3 remains auditable here.

The fault-injection campaign (:mod:`repro.campaign.invariants`) is the
dynamic complement of this static registry: it checks, after every swept
run, that the *consequences* the paper derives from P1-P6 actually hold
(agreement and validity from Section 4, the ``min{f+2, t+2}`` bound of
Theorem C.1, P4-driven sanitization per Appendix D).  The prose tour of
both layers is ``docs/ADVERSARIES.md``.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass
from typing import Tuple


@dataclass(frozen=True)
class Property:
    """One of the paper's security properties."""

    key: str
    name: str
    features: Tuple[str, ...]       # SGX features it relies on (F1-F4)
    defeats: Tuple[str, ...]        # attacks it blocks (A1-A5)
    enforced_by: Tuple[str, ...]    # "module:symbol" implementation anchors
    summary: str

    def resolve_anchors(self) -> None:
        """Import every implementation anchor; raises if any is missing."""
        for anchor in self.enforced_by:
            module_name, _, symbol = anchor.partition(":")
            module = importlib.import_module(module_name)
            if symbol and not hasattr(module, symbol):
                raise AttributeError(
                    f"{module_name} does not export {symbol} "
                    f"(stale anchor for {self.key})"
                )


PROPERTIES: Tuple[Property, ...] = (
    Property(
        key="P1",
        name="Execution integrity",
        features=("F1", "F3"),
        defeats=("A1",),
        enforced_by=(
            "repro.sgx.enclave:Enclave",
            "repro.sgx.attestation:AttestationAuthority",
            "repro.sgx.measurement:measure_program",
        ),
        summary=(
            "Protocol state and control flow live inside the enclave; remote "
            "attestation pins the exact program, so instructions cannot be "
            "skipped, repeated or replaced."
        ),
    ),
    Property(
        key="P2",
        name="Message integrity & authenticity",
        features=("F1", "F3"),
        defeats=("A2",),
        enforced_by=(
            "repro.channel.peer_channel:SecureChannel",
            "repro.crypto.aead:AEAD",
        ),
        summary=(
            "Every message is encrypt-then-MAC'd under per-pair keys from an "
            "attested DH exchange; forged or tampered messages fail "
            "verification and count as omitted."
        ),
    ),
    Property(
        key="P3",
        name="Blind-box computation",
        features=("F1", "F2"),
        defeats=("A3",),
        enforced_by=(
            "repro.channel.peer_channel:SecureChannel",
            "repro.sgx.rdrand:RdRand",
        ),
        summary=(
            "Inputs, intermediate state and randomness are hidden from the "
            "OS; content-based selective omission is impossible because the "
            "OS only ever sees ciphertext."
        ),
    ),
    Property(
        key="P4",
        name="Halt-on-divergence",
        features=("F1",),
        defeats=("A3",),
        enforced_by=(
            "repro.net.simulator:MulticastHandle",
            "repro.sgx.enclave:Enclave",
        ),
        summary=(
            "A multicast that collects fewer than t ACKs halts its own "
            "enclave: identity-based selective omission churns the node out "
            "of the network, sanitizing the P2P overlay."
        ),
    ),
    Property(
        key="P5",
        name="Lockstep execution",
        features=("F4",),
        defeats=("A4",),
        enforced_by=(
            "repro.sgx.trusted_time:TrustedClock",
            "repro.core.erb:ErbCore",
        ),
        summary=(
            "The enclave derives the round from trusted elapsed time and "
            "stamps/validates it on every message; delayed messages arrive "
            "with a stale round and are treated as omitted."
        ),
    ),
    Property(
        key="P6",
        name="Message freshness",
        features=("F2",),
        defeats=("A5",),
        enforced_by=(
            "repro.channel.replay:ReplayGuard",
            "repro.core.erb:ErbCore",
        ),
        summary=(
            "Randomly seeded, strictly increasing sequence numbers are "
            "checked on every message; replays from past or parallel "
            "instances are rejected."
        ),
    ),
)


def property_by_key(key: str) -> Property:
    for prop in PROPERTIES:
        if prop.key == key:
            return prop
    raise KeyError(key)
