"""The strawman protocols of Section 2.3 (Algorithm 1) — deliberately weak.

These run over :class:`PlainTransport` (``ChannelSecurity.NONE``): no
integrity, no freshness, no round discipline, no ACKs.  They exist so the
attack demonstrations (A1-A5) have something to break; the test-suite
shows each attack succeeding here and failing against ERB/ERNG.

:class:`StrawmanBroadcastProgram` is Algorithm 1's broadcast skeleton: an
equivocating initiator (``EquivocationForger``) splits honest nodes into
groups accepting different values — violating agreement.

:class:`StrawmanRngProgram` is the naive distributed XOR beacon: everyone
broadcasts a random value, everyone XORs what arrived.  The
``LookaheadBiasAdversary`` withholds its own contribution until it has
seen everyone else's, then releases it only when that flips the output
into a favourable set — achieving the classic 3/4-vs-1/2 bias of attack
A4.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.common.config import ChannelSecurity, SimulationConfig
from repro.common.errors import ConfigurationError
from repro.common.types import MessageType, NodeId, ProtocolMessage
from repro.core.erng import xor_fold
from repro.net.simulator import RunResult, SynchronousNetwork
from repro.sgx.program import EnclaveProgram


class StrawmanBroadcastProgram(EnclaveProgram):
    """Algorithm 1 without any SGX protections."""

    PROGRAM_NAME = "strawman-broadcast"
    PROGRAM_VERSION = "1"

    def __init__(
        self,
        node_id: NodeId,
        initiator: NodeId,
        n: int,
        t: int,
        message: object = None,
    ) -> None:
        super().__init__()
        self.node_id = node_id
        self.initiator = initiator
        self.n = n
        self.t = t
        self.broadcast_message = message
        self.m_hat: Optional[object] = None
        self.s_m: set = set()

    @property
    def round_bound(self) -> int:
        return self.t + 1

    @property
    def accept_quorum(self) -> int:
        return self.n - self.t

    def on_round_begin(self, ctx) -> None:
        if ctx.round == 1 and ctx.node_id == self.initiator:
            self.m_hat = self.broadcast_message
            self.s_m.add(self.node_id)
            ctx.multicast(
                ProtocolMessage(
                    type=MessageType.INIT,
                    initiator=self.initiator,
                    seq=0,
                    payload=self.broadcast_message,
                    rnd=ctx.round,
                    instance="strawman",
                ),
                expect_acks=False,
            )

    def on_message(self, ctx, sender: NodeId, message: ProtocolMessage) -> None:
        if message.type is MessageType.INIT:
            if self.m_hat is None:
                self.m_hat = message.payload
                self.s_m.add(self.node_id)
                self.s_m.add(sender)
                self._stage_echo(ctx)
            return
        if message.type is MessageType.ECHO:
            if self.m_hat is None:
                self.m_hat = message.payload
                self.s_m.add(self.node_id)
                self._stage_echo(ctx)
            if message.payload == self.m_hat and sender not in self.s_m:
                self.s_m.add(sender)
                if len(self.s_m) >= self.accept_quorum and not self.has_output:
                    self._accept(ctx, self.m_hat)

    def on_round_end(self, ctx) -> None:
        if ctx.round >= self.round_bound and not self.has_output:
            self._accept(ctx, None)

    def on_protocol_end(self, ctx) -> None:
        if not self.has_output:
            self._accept(ctx, None)

    def _stage_echo(self, ctx) -> None:
        ctx.multicast(
            ProtocolMessage(
                type=MessageType.ECHO,
                initiator=self.initiator,
                seq=0,
                payload=self.m_hat,
                rnd=0,
                instance="strawman",
            ),
            expect_acks=False,
        )


class StrawmanRngProgram(EnclaveProgram):
    """Naive XOR beacon: broadcast your number, XOR what you received."""

    PROGRAM_NAME = "strawman-rng"
    PROGRAM_VERSION = "1"

    #: Fixed two-round schedule: contribute in round 1, tally after round 2.
    ROUND_BOUND = 2

    def __init__(self, node_id: NodeId, n: int, random_bits: int = 32) -> None:
        super().__init__()
        self.node_id = node_id
        self.n = n
        self.random_bits = random_bits
        self.contribution: Optional[int] = None
        self.received: Dict[NodeId, int] = {}

    def on_round_begin(self, ctx) -> None:
        if ctx.round == 1:
            self.contribution = ctx.rdrand.random_bits(self.random_bits)
            self.received[self.node_id] = self.contribution
            ctx.multicast(
                ProtocolMessage(
                    type=MessageType.INIT,
                    initiator=self.node_id,
                    seq=0,
                    payload=self.contribution,
                    rnd=ctx.round,
                    instance=f"srng-{self.node_id}",
                ),
                expect_acks=False,
            )

    def on_message(self, ctx, sender: NodeId, message: ProtocolMessage) -> None:
        if message.type is MessageType.INIT and isinstance(message.payload, int):
            # No freshness, no round check: last write wins.
            self.received[message.initiator] = message.payload

    def on_round_end(self, ctx) -> None:
        if ctx.round >= self.ROUND_BOUND and not self.has_output:
            self._accept(ctx, xor_fold(self.received.values()))

    def on_protocol_end(self, ctx) -> None:
        if not self.has_output:
            self._accept(ctx, xor_fold(self.received.values()))


def run_strawman_broadcast(
    config: SimulationConfig,
    initiator: NodeId,
    message: object,
    behaviors: Optional[Dict[NodeId, object]] = None,
) -> RunResult:
    """Run Algorithm 1 over insecure channels (attack playground)."""
    _require_plain(config)

    def factory(node_id: NodeId) -> StrawmanBroadcastProgram:
        return StrawmanBroadcastProgram(
            node_id=node_id,
            initiator=initiator,
            n=config.n,
            t=config.t,
            message=message if node_id == initiator else None,
        )

    network = SynchronousNetwork(config, factory, behaviors=behaviors)
    return network.run(max_rounds=config.t + 1)


def run_strawman_rng(
    config: SimulationConfig,
    behaviors: Optional[Dict[NodeId, object]] = None,
) -> RunResult:
    """Run the naive XOR beacon over insecure channels."""
    _require_plain(config)

    def factory(node_id: NodeId) -> StrawmanRngProgram:
        return StrawmanRngProgram(
            node_id=node_id, n=config.n, random_bits=config.random_bits
        )

    network = SynchronousNetwork(config, factory, behaviors=behaviors)
    return network.run(max_rounds=StrawmanRngProgram.ROUND_BOUND)


def _require_plain(config: SimulationConfig) -> None:
    if config.channel_security is not ChannelSecurity.NONE:
        raise ConfigurationError(
            "the strawman protocols model the *absence* of SGX protections; "
            "run them with ChannelSecurity.NONE"
        )
