"""Unoptimized ERNG (Algorithm 3): N concurrent ERB instances + XOR.

Every node draws ``m_i <- {0,1}^k`` from enclave randomness (F2) and
reliably broadcasts it; after all instances settle, each node XORs the
agreed set ``S_final`` into the common output ``r``.

Why the output is unbiased (Theorem 5.1 / Appendix E):

* a byzantine node cannot *choose* its contribution — the value comes from
  RDRAND inside the enclave (P1 blocks re-rolling, F2 blocks biasing);
* it cannot *see* other contributions in flight (blind-box computation,
  P3), so content-based selective omission is impossible;
* it cannot *wait out* the honest contributions and then decide whether to
  join (the A4 look-ahead attack): lockstep execution (P5) means a
  contribution released after its round is stamped stale and ignored.

What remains is identity-oblivious omission, which can only replace a
contribution by ⊥ *consistently for everyone* — and XOR of any set that
contains at least one uniform honest value is uniform.

Early stopping: all N instance tags are known up front (one per peer), so
a node may accept as soon as every one of its N cores has decided — in a
fully honest network that is round 2.  With silent byzantine initiators
their cores only decide ⊥ at the round-``t+2`` deadline, giving the
``O(N)`` worst-case round complexity of Table 2.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.common.config import SimulationConfig
from repro.common.types import NodeId, ProtocolMessage
from repro.core.erb import ErbCore
from repro.net.simulator import RunResult, SynchronousNetwork
from repro.sgx.program import EnclaveProgram


def xor_fold(values) -> int:
    """XOR-combine an iterable of ints (the ⊕ over ``S_final``)."""
    result = 0
    for value in values:
        result ^= value
    return result


class ErngProgram(EnclaveProgram):
    """Algorithm 3 at one node: N multiplexed ERB cores."""

    PROGRAM_NAME = "erng-unoptimized"
    PROGRAM_VERSION = "1"

    #: Spontaneous activity is round 1 (the RDRAND draw + own INIT) and
    #: the round-``t+2`` deadline; core decisions in between only happen
    #: inside ``on_message``, which re-wakes the node for round end.
    SPARSE_AWARE = True

    def __init__(
        self,
        node_id: NodeId,
        n: int,
        t: int,
        random_bits: int = 128,
        seq: int = 1,
    ) -> None:
        super().__init__()
        self.node_id = node_id
        self.n = n
        self.t = t
        self.random_bits = random_bits
        # One core per initiator; every instance tag is known up front.
        self.cores: Dict[str, ErbCore] = {
            self._instance(j): ErbCore(
                instance=self._instance(j),
                initiator=j,
                expected_seq=seq,
                group_size=n,
                fault_bound=t,
            )
            for j in range(n)
        }
        self.contribution: Optional[int] = None
        self.final_set: Dict[NodeId, int] = {}

    @staticmethod
    def _instance(initiator: NodeId) -> str:
        return f"rng-{initiator}"

    @property
    def round_bound(self) -> int:
        return self.t + 2

    # ------------------------------------------------------------------
    def on_round_begin(self, ctx) -> None:
        if ctx.round == 1:
            self.contribution = ctx.rdrand.random_bits(self.random_bits)
            self.cores[self._instance(ctx.node_id)].begin(ctx, self.contribution)

    def on_message(self, ctx, sender: NodeId, message: ProtocolMessage) -> None:
        core = self.cores.get(message.instance)
        if core is not None:
            core.handle_message(ctx, sender, message)

    def on_round_end(self, ctx) -> None:
        if ctx.round >= self.round_bound:
            for core in self.cores.values():
                core.finish(ctx)
        if all(core.decided for core in self.cores.values()):
            self._decide(ctx)

    def on_protocol_end(self, ctx) -> None:
        for core in self.cores.values():
            core.finish(ctx)
        self._decide(ctx)

    def sparse_wake_round(self, rnd: int):
        if self.has_output:
            return None
        return max(rnd + 1, self.round_bound)

    # ------------------------------------------------------------------
    def _decide(self, ctx) -> None:
        if self.has_output:
            return
        self.final_set = {
            core.initiator: core.output
            for core in self.cores.values()
            if core.output is not None
        }
        tracer = getattr(ctx, "tracer", None)
        if tracer is not None and tracer.enabled:
            tracer.protocol(
                "erng_final_set",
                node=ctx.node_id,
                rnd=ctx.round,
                contributors=sorted(self.final_set),
                dropped=self.n - len(self.final_set),
            )
        self._accept(ctx, xor_fold(self.final_set.values()))


def run_erng(
    config: SimulationConfig,
    behaviors: Optional[Dict[NodeId, object]] = None,
    topology=None,
) -> RunResult:
    """Build a network and execute one unoptimized-ERNG run."""
    config.require_erb_bound()

    def factory(node_id: NodeId) -> ErngProgram:
        return ErngProgram(
            node_id=node_id,
            n=config.n,
            t=config.t,
            random_bits=config.random_bits,
        )

    network = SynchronousNetwork(
        config, factory, behaviors=behaviors, topology=topology
    )
    return network.run(max_rounds=config.t + 2)
