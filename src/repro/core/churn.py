"""End-to-end network sanitization: repeated ERB instances on one
persistent network (the process Appendix D models analytically).

A :class:`ChurnDriver` keeps a single :class:`SynchronousNetwork` alive
across many ERB instances.  Each byzantine node independently decides per
instance (probability ``p``) whether to misbehave — when it does, it
omits its multicasts to a majority of the network, fails to collect ``t``
ACKs, and its enclave halts (P4).  Because channels and enclave state
persist across instances, a halted node stays out forever, and the count
of *live* byzantine nodes follows exactly the contraction process of
Theorem D.1 (with no replacement: ``q = 0``).

The driver reports the live-byzantine trajectory plus per-instance round
counts, so the Appendix D bench can put a *measured* protocol-level
trajectory next to the closed form — not just a Monte-Carlo of the
abstract process.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence

_LOG = logging.getLogger("repro.protocol")

from repro.adversary.behaviors import OSBehavior, Transmission
from repro.channel.peer_channel import WireMessage
from repro.common.config import SimulationConfig
from repro.common.errors import ConfigurationError
from repro.common.rng import DeterministicRNG
from repro.common.types import MessageType, NodeId
from repro.core.erb import ErbProgram
from repro.net.simulator import SynchronousNetwork


class IntermittentOmission(OSBehavior):
    """A byzantine OS that misbehaves only in flagged instances.

    While active it drops every outgoing protocol message to the victims
    (a majority of peers) — the identity-based selective omission P4
    punishes.  ACKs still flow so the node is not ejected for a round in
    which it behaved.
    """

    def __init__(self, victims: Iterable[NodeId]) -> None:
        self._victims = frozenset(victims)
        self.active = False

    def filter_send(self, wire: WireMessage, rnd: int) -> Iterable[Transmission]:
        if (
            self.active
            and wire.mtype is not MessageType.ACK
            and wire.receiver in self._victims
        ):
            return ()
        return ((0, wire),)


@dataclass
class ChurnReport:
    """Measured trajectory of one churn run."""

    live_byzantine: List[int] = field(default_factory=list)  # per instance
    rounds_per_instance: List[int] = field(default_factory=list)
    ejected_order: List[NodeId] = field(default_factory=list)
    agreements_held: int = 0
    instances: int = 0

    @property
    def sanitized_at(self) -> int:
        """First instance index after which no byzantine node is live."""
        for index, count in enumerate(self.live_byzantine):
            if count == 0:
                return index
        return -1


class ChurnDriver:
    """Run ``r`` successive ERB instances over one persistent network."""

    def __init__(
        self,
        config: SimulationConfig,
        byzantine: Sequence[NodeId],
        misbehave_p: float,
        seed: int = 0,
    ) -> None:
        config.require_erb_bound()
        if not 0.0 <= misbehave_p <= 1.0:
            raise ConfigurationError("misbehave_p must be a probability")
        byz_set = set(byzantine)
        if len(byz_set) > config.t:
            raise ConfigurationError(
                f"{len(byz_set)} byzantine nodes exceed the bound t={config.t}"
            )
        self.config = config
        self.byzantine = sorted(byz_set)
        self.misbehave_p = misbehave_p
        self._rng = DeterministicRNG(("churn-driver", seed))
        # Misbehaving = omitting to a strict majority of the network.
        majority = config.n // 2 + 1
        self._behaviors: Dict[NodeId, IntermittentOmission] = {}
        for node in self.byzantine:
            victims = [peer for peer in range(config.n) if peer != node][:majority]
            self._behaviors[node] = IntermittentOmission(victims)
        self._honest = [
            node for node in range(config.n) if node not in byz_set
        ]
        self._network: SynchronousNetwork = SynchronousNetwork(
            config, self._factory_for(instance=0), dict(self._behaviors)
        )
        self._instance = 0

    def _factory_for(self, instance: int):
        config = self.config
        initiator = self._honest[instance % len(self._honest)]

        def factory(node_id: NodeId) -> ErbProgram:
            return ErbProgram(
                node_id=node_id,
                initiator=initiator,
                n=config.n,
                t=config.t,
                seq=instance + 1,
                message=(
                    f"instance-{instance}" if node_id == initiator else None
                ),
                instance=f"churn-{instance}",
            )

        return factory

    def run(self, instances: int) -> ChurnReport:
        """Execute ``instances`` successive broadcasts; returns the report."""
        report = ChurnReport(instances=instances)
        network = self._network
        for _ in range(instances):
            if self._instance > 0:
                network.replace_programs(self._factory_for(self._instance))
            # Per-instance coin flips (the Appendix D process).
            for node, behavior in self._behaviors.items():
                behavior.active = (
                    network.nodes[node].alive
                    and self._rng.bernoulli(self.misbehave_p)
                )
            result = network.run(max_rounds=self.config.t + 2)
            report.rounds_per_instance.append(result.rounds_executed)
            newly_ejected = [
                node for node in result.halted
                if node not in report.ejected_order
            ]
            report.ejected_order.extend(newly_ejected)
            live = sum(
                1 for node in self.byzantine if network.nodes[node].alive
            )
            report.live_byzantine.append(live)
            honest_values = {
                value
                for node, value in result.outputs.items()
                if node in self._honest and network.nodes[node].alive
            }
            agreement_held = len(honest_values) == 1
            if agreement_held:
                report.agreements_held += 1
            network.tracer.churn(
                instance=self._instance,
                live_byzantine=live,
                rounds=result.rounds_executed,
                agreement_held=agreement_held,
                ejected=newly_ejected,
            )
            _LOG.info(
                "churn instance %d: %d rounds, ejected %s, "
                "%d byzantine still live",
                self._instance, result.rounds_executed,
                newly_ejected or "none", live,
            )
            self._instance += 1
        return report
