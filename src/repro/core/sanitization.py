"""Network sanitization — the Appendix D churn analysis, executable.

Setting: the protocol runs repeatedly.  Before instance ``i+1`` the
network holds ``F_i`` byzantine nodes; during an instance each byzantine
node independently misbehaves with probability ``p`` (and is then churned
out by halt-on-divergence); every eliminated node is replaced by a new
peer which is byzantine with probability ``1/2``.  Appendix D derives:

* ``E[F_{i+1}] = (1 - p/2) · E[F_i]``                       (Wald)
* ``Pr[F_r >= 1] <= t · (1 - p/2)^r <= e^{-λ}`` with
  ``λ = rp/2 - ln t``                                        (Thm. D.1)
* the average round complexity converges to a constant:
  ``E[R] - 2 ≈ (3 t² / 2r) · (1 - e^{-pr/2})``               (Thm. D.2)

:class:`SanitizationModel` provides the closed forms plus a Monte-Carlo
simulator of the same process, so the Appendix D bench can put measured
trajectories next to the analytic bounds.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List

from repro.common.errors import ConfigurationError
from repro.common.rng import DeterministicRNG


@dataclass
class SanitizationOutcome:
    """One Monte-Carlo trajectory of the churn process."""

    faulty_by_instance: List[int] = field(default_factory=list)
    eliminated_total: int = 0
    joined_byzantine_total: int = 0

    @property
    def instances(self) -> int:
        return len(self.faulty_by_instance)

    @property
    def sanitized_at(self) -> int:
        """First instance index with zero byzantine nodes (-1 if never)."""
        for index, count in enumerate(self.faulty_by_instance):
            if count == 0:
                return index
        return -1


class SanitizationModel:
    """Closed-form predictions and Monte-Carlo simulation of Appendix D."""

    def __init__(
        self, t: int, p: float, replacement_byzantine_p: float = 0.5
    ) -> None:
        if t < 0:
            raise ConfigurationError("t must be non-negative")
        if not 0.0 <= p <= 1.0:
            raise ConfigurationError("p must be a probability")
        if not 0.0 <= replacement_byzantine_p <= 1.0:
            raise ConfigurationError("replacement_byzantine_p must be a probability")
        self.t = t
        self.p = p
        self.replacement_byzantine_p = replacement_byzantine_p

    # ---- closed forms ----------------------------------------------------
    @property
    def decay_per_instance(self) -> float:
        """The per-instance contraction ``1 - p + p·q`` (= 1 - p/2 at q=1/2)."""
        return 1.0 - self.p * (1.0 - self.replacement_byzantine_p)

    def expected_faulty_after(self, r: int) -> float:
        """``E[F_r] = decay^r · t``."""
        if r < 0:
            raise ConfigurationError("r must be non-negative")
        return (self.decay_per_instance ** r) * self.t

    def prob_any_faulty_bound(self, r: int) -> float:
        """Markov bound ``Pr[F_r >= 1] <= t · decay^r`` (Theorem D.1)."""
        return min(1.0, self.expected_faulty_after(r))

    def instances_for_confidence(self, lam: float) -> int:
        """Smallest ``r`` with ``Pr[F_r >= 1] <= e^{-λ}``.

        From ``λ = r·p_eff - ln t`` where
        ``p_eff = -ln(decay) ≈ p/2`` for small p.
        """
        if self.t == 0:
            return 0
        if self.decay_per_instance >= 1.0:
            raise ConfigurationError(
                "process does not contract: p = 0 or replacements fully byzantine"
            )
        p_eff = -math.log(self.decay_per_instance)
        return max(0, math.ceil((lam + math.log(self.t)) / p_eff))

    def expected_average_rounds(self, r: int, base_rounds: int = 2) -> float:
        """Theorem D.2's average-round estimate over ``r`` instances.

        ``E[R] ≈ base + (3 t² / 2r) · (1 - decay^{r+1})`` — converging to
        the constant ``base`` as ``r`` grows polynomially.
        """
        if r <= 0:
            raise ConfigurationError("r must be positive")
        expected_events = 1.5 * self.t * (1.0 - self.decay_per_instance ** (r + 1))
        # Each misbehaviour event stretches one instance from `base_rounds`
        # to at most t rounds; amortized over r instances:
        return base_rounds + (expected_events * self.t) / r

    # ---- Monte Carlo -------------------------------------------------------
    def simulate(self, instances: int, rng: DeterministicRNG) -> SanitizationOutcome:
        """Sample one trajectory ``F_0 = t, F_1, ..., F_instances``."""
        outcome = SanitizationOutcome()
        faulty = self.t
        outcome.faulty_by_instance.append(faulty)
        for _ in range(instances):
            misbehaved = sum(
                1 for _ in range(faulty) if rng.bernoulli(self.p)
            )
            replaced_byzantine = sum(
                1
                for _ in range(misbehaved)
                if rng.bernoulli(self.replacement_byzantine_p)
            )
            outcome.eliminated_total += misbehaved
            outcome.joined_byzantine_total += replaced_byzantine
            faulty = faulty - misbehaved + replaced_byzantine
            outcome.faulty_by_instance.append(faulty)
        return outcome

    def monte_carlo_mean(
        self, instances: int, trials: int, rng: DeterministicRNG
    ) -> List[float]:
        """Mean trajectory over ``trials`` simulations (index = instance)."""
        if trials < 1:
            raise ConfigurationError("trials must be >= 1")
        sums = [0.0] * (instances + 1)
        for trial in range(trials):
            outcome = self.simulate(instances, rng.fork(("trial", trial)))
            for index, value in enumerate(outcome.faulty_by_instance):
                sums[index] += value
        return [value / trials for value in sums]
