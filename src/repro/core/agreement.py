"""Interactive consistency and byzantine agreement on top of ERB.

The paper notes (Table 1, footnote 2) that reliable broadcast and
byzantine agreement inter-reduce at an extra O(N) message cost.  This
module is that reduction made concrete: every node ERB-broadcasts its
input; after all N instances settle, each node holds the same vector
(interactive consistency), and applying any deterministic resolution rule
to the common vector yields agreement — with the general-omission
reduction in force, for up to ``t < N/2`` byzantine peers.

Provided resolution rules:

* :func:`majority_rule` — classic BA: the most frequent non-⊥ value
  (ties and empty vectors resolve to the ``default``);
* :func:`median_rule` — for ordered inputs (approximate agreement uses);
* any user-supplied ``Callable[[dict], value]`` — it runs on the *common*
  vector, so any deterministic function preserves agreement.
"""

from __future__ import annotations

from collections import Counter
from typing import Callable, Dict, Optional

from repro.common.config import SimulationConfig
from repro.common.errors import ConfigurationError
from repro.common.types import NodeId, ProtocolMessage
from repro.core.erb import ErbCore
from repro.net.simulator import RunResult, SynchronousNetwork
from repro.sgx.program import EnclaveProgram

#: A resolution rule maps the agreed vector {node: value-or-None} to the
#: decision.  It must be deterministic — it runs independently at every
#: node on an identical vector.
ResolutionRule = Callable[[Dict[NodeId, object]], object]


def majority_rule(default: object = None) -> ResolutionRule:
    """Most frequent non-⊥ value; deterministic tie-break; ``default`` if
    the vector is empty."""

    def rule(vector: Dict[NodeId, object]) -> object:
        values = [v for v in vector.values() if v is not None]
        if not values:
            return default
        counts = Counter(values)
        best = max(counts.values())
        winners = sorted(
            (value for value, count in counts.items() if count == best),
            key=repr,
        )
        return winners[0]

    return rule


def median_rule(default: object = None) -> ResolutionRule:
    """Lower median of the non-⊥ values (inputs must be orderable)."""

    def rule(vector: Dict[NodeId, object]) -> object:
        values = sorted(v for v in vector.values() if v is not None)
        if not values:
            return default
        return values[(len(values) - 1) // 2]

    return rule


class InteractiveConsistencyProgram(EnclaveProgram):
    """Every node reliably broadcasts its input; output = the common
    vector, optionally folded through a resolution rule."""

    PROGRAM_NAME = "interactive-consistency"
    PROGRAM_VERSION = "1"

    def __init__(
        self,
        node_id: NodeId,
        n: int,
        t: int,
        my_input: object,
        rule: Optional[ResolutionRule] = None,
        seq: int = 1,
    ) -> None:
        super().__init__()
        self.node_id = node_id
        self.n = n
        self.t = t
        self.my_input = my_input
        self.rule = rule
        self.vector: Dict[NodeId, object] = {}
        self.cores: Dict[str, ErbCore] = {
            self._instance(j): ErbCore(
                instance=self._instance(j),
                initiator=j,
                expected_seq=seq,
                group_size=n,
                fault_bound=t,
            )
            for j in range(n)
        }

    @staticmethod
    def _instance(initiator: NodeId) -> str:
        return f"ic-{initiator}"

    @property
    def round_bound(self) -> int:
        return self.t + 2

    def on_round_begin(self, ctx) -> None:
        if ctx.round == 1:
            self.cores[self._instance(ctx.node_id)].begin(ctx, self.my_input)

    def on_message(self, ctx, sender: NodeId, message: ProtocolMessage) -> None:
        core = self.cores.get(message.instance)
        if core is not None:
            core.handle_message(ctx, sender, message)

    def on_round_end(self, ctx) -> None:
        if ctx.round >= self.round_bound:
            for core in self.cores.values():
                core.finish(ctx)
        if all(core.decided for core in self.cores.values()):
            self._decide(ctx)

    def on_protocol_end(self, ctx) -> None:
        for core in self.cores.values():
            core.finish(ctx)
        self._decide(ctx)

    def _decide(self, ctx) -> None:
        if self.has_output:
            return
        self.vector = {
            core.initiator: core.output for core in self.cores.values()
        }
        tracer = getattr(ctx, "tracer", None)
        if tracer is not None and tracer.enabled:
            tracer.protocol(
                "ic_vector",
                node=self.node_id,
                rnd=ctx.round,
                settled=sum(1 for v in self.vector.values() if v is not None),
                bottoms=sum(1 for v in self.vector.values() if v is None),
            )
        if self.rule is None:
            # Freeze the vector itself as the output (hashable form).
            self._accept(ctx, tuple(sorted(self.vector.items(), key=lambda kv: kv[0])))
        else:
            self._accept(ctx, self.rule(self.vector))


def run_interactive_consistency(
    config: SimulationConfig,
    inputs: Dict[NodeId, object],
    behaviors: Optional[Dict[NodeId, object]] = None,
) -> RunResult:
    """All nodes exchange their inputs; every honest node outputs the
    same N-vector (⊥ for silent/ejected initiators)."""
    return _run(config, inputs, rule=None, behaviors=behaviors)


def run_byzantine_agreement(
    config: SimulationConfig,
    inputs: Dict[NodeId, object],
    rule: Optional[ResolutionRule] = None,
    behaviors: Optional[Dict[NodeId, object]] = None,
) -> RunResult:
    """Byzantine agreement: interactive consistency + a resolution rule
    (majority by default).  Satisfies agreement always, and validity
    whenever all honest inputs coincide."""
    return _run(
        config, inputs, rule=rule or majority_rule(), behaviors=behaviors
    )


def _run(
    config: SimulationConfig,
    inputs: Dict[NodeId, object],
    rule: Optional[ResolutionRule],
    behaviors: Optional[Dict[NodeId, object]],
) -> RunResult:
    config.require_erb_bound()
    missing = set(range(config.n)) - set(inputs)
    if missing:
        raise ConfigurationError(f"inputs missing for nodes {sorted(missing)}")

    def factory(node_id: NodeId) -> InteractiveConsistencyProgram:
        return InteractiveConsistencyProgram(
            node_id=node_id,
            n=config.n,
            t=config.t,
            my_input=inputs[node_id],
            rule=rule,
        )

    network = SynchronousNetwork(config, factory, behaviors=behaviors)
    return network.run(max_rounds=config.t + 2)
