"""Command-line interface: run the paper's protocols from a shell.

Examples::

    python -m repro erb --n 32 --initiator 0 --message hello
    python -m repro erb --n 32 --chain 6          # Fig. 2c worst case
    python -m repro erb --n 16 --trace-out /tmp/t.jsonl
    python -m repro inspect /tmp/t.jsonl          # per-round timeline
    python -m repro erb --n 64 --timing-out /tmp/timing.json
    python -m repro report /tmp/timing.json --html /tmp/report.html
    python -m repro report BENCH_engine.json      # throughput trend + gate
    python -m repro erng --n 16
    python -m repro erng-opt --n 120 --gamma 7
    python -m repro agreement --n 9 --inputs A,A,B,A,B,A,A,B,A
    python -m repro beacon --n 9 --epochs 4
    python -m repro churn --n 17 --byzantine 1,3,5 --p 0.4 --instances 20
    python -m repro campaign --protocols erb,erng --sizes 5,8 --seeds 3
    python -m repro replay artifacts/repro-erb-n3-t0-seed....json
    python -m repro cluster --n 5 --protocol erb          # real TCP sockets
    python -m repro cluster --n 5 --protocol erng --calibrate
    python -m repro node --config node0.json              # one daemon
"""

from __future__ import annotations

import argparse
import json
import logging
import sys
from time import perf_counter
from typing import List, Optional

from repro import (
    ClusterConfig,
    SimulationConfig,
    run_erb,
    run_erng,
    run_optimized_erng,
)
from repro.adversary import chain_delay_strategy
from repro.apps.beacon import RandomBeacon
from repro.core.agreement import run_byzantine_agreement
from repro.core.churn import ChurnDriver
from repro.core.pb_erb import PbErbConfig, run_pb_erb
from repro.obs import JsonlSink, Tracer, read_trace, render_timeline
from repro.obs.events import MetaEvent
from repro.net.parallel import planned_data_plane
from repro.obs.machine import machine_stamp
from repro.obs.metrics import PROFILER
from repro.obs.timing import TimingCollector


def _configure_logging(verbosity: int) -> None:
    """Wire ``-v`` / ``-vv`` to the ``repro`` logger hierarchy.

    One ``-v`` surfaces protocol decisions (INFO on ``repro.protocol``);
    two show the engine's per-round summaries as well (DEBUG everywhere).
    """
    if verbosity <= 0:
        return
    root = logging.getLogger("repro")
    if root.handlers:  # repeated main() calls must not stack handlers
        root.setLevel(logging.DEBUG if verbosity >= 2 else logging.INFO)
        return
    handler = logging.StreamHandler(sys.stderr)
    handler.setFormatter(logging.Formatter("%(levelname).1s %(name)s: %(message)s"))
    root.addHandler(handler)
    root.setLevel(logging.DEBUG if verbosity >= 2 else logging.INFO)


def _tracer_for(args: argparse.Namespace) -> Optional[Tracer]:
    """Build a JSONL-backed tracer when ``--trace-out`` was given.

    The first record of every trace is a :class:`MetaEvent` carrying the
    machine stamp, so later timing comparisons across trace files stay
    provenance-aware.
    """
    path = getattr(args, "trace_out", None)
    if not path:
        return None
    try:
        tracer = Tracer(JsonlSink(path))
    except OSError as exc:
        raise SystemExit(f"error: cannot write trace to {path}: {exc}")
    tracer.emit(MetaEvent(machine=_stamp_for(args)))
    return tracer


def _stamp_for(args: argparse.Namespace) -> dict:
    """The machine stamp for this invocation, data plane included when
    the run shape would engage the parallel engine."""
    workers = getattr(args, "workers", None)
    extra = {"parallel_data_plane": getattr(args, "data_plane", "auto")}
    # "auto" resolves per network (it depends on which programs are
    # sparse-aware), so the stamp records the *requested* mode verbatim;
    # comparability is equality, which is conservative either way.
    return machine_stamp(
        workers=workers,
        data_plane=planned_data_plane(workers, extra),
        scheduler=getattr(args, "scheduler", "auto"),
    )


def _finish_trace(tracer: Optional[Tracer], args: argparse.Namespace) -> None:
    if tracer is not None:
        tracer.close()
        print(f"trace written to {args.trace_out}", file=sys.stderr)


def _finish_obs(config: SimulationConfig, args: argparse.Namespace, result) -> None:
    """Write the ``--timing-out`` / ``--metrics-out`` sidecars.

    Both sidecars carry the machine stamp (git rev, cpu_count, workers):
    performance numbers without provenance are anecdotes (see
    :mod:`repro.obs.bench`).
    """
    stamp = _stamp_for(args)
    timing_out = getattr(args, "timing_out", None)
    if timing_out and config.timing is not None:
        payload = config.timing.as_dict()
        payload["machine"] = stamp
        if result is not None:
            payload["traffic"] = {"summary": result.traffic.summary()}
        try:
            with open(timing_out, "w", encoding="utf-8") as fh:
                json.dump(payload, fh, indent=1)
                fh.write("\n")
        except OSError as exc:
            print(f"error: cannot write timing to {timing_out}: {exc}",
                  file=sys.stderr)
        else:
            coverage = config.timing.coverage()
            print(
                f"timing written to {timing_out} "
                f"({coverage:.1%} of wall attributed; render with "
                f"`python -m repro report {timing_out}`)",
                file=sys.stderr,
            )
    metrics_out = getattr(args, "metrics_out", None)
    if metrics_out and PROFILER.enabled and PROFILER.registry is not None:
        registry = PROFILER.registry
        if result is not None:
            result.stats.publish(registry)
        payload = {"machine": stamp, "metrics": registry.as_dict()}
        try:
            with open(metrics_out, "w", encoding="utf-8") as fh:
                json.dump(payload, fh, indent=1)
                fh.write("\n")
        except OSError as exc:
            print(f"error: cannot write metrics to {metrics_out}: {exc}",
                  file=sys.stderr)
        else:
            print(f"metrics written to {metrics_out}", file=sys.stderr)
        PROFILER.disable()


def _print_result(result, label: str) -> None:
    values = sorted({repr(v) for v in result.outputs.values()})
    print(f"{label}:")
    print(f"  accepted value(s): {', '.join(values)}")
    print(f"  rounds:            {result.rounds_executed}")
    print(f"  simulated time:    {result.termination_seconds:.2f} s")
    print(f"  ejected nodes:     {result.halted or 'none'}")
    print(f"  traffic:           {result.traffic.summary()}")


def _config_for(args: argparse.Namespace, **overrides) -> SimulationConfig:
    """The SimulationConfig shared by every protocol subcommand."""
    params = dict(
        n=args.n,
        t=args.t,
        seed=args.seed,
        tracer=_tracer_for(args),
        workers=getattr(args, "workers", 1),
    )
    extra = {}
    data_plane = getattr(args, "data_plane", "auto")
    if data_plane != "auto":
        extra["parallel_data_plane"] = data_plane
    scheduler = getattr(args, "scheduler", "auto")
    if scheduler != "auto":
        extra["scheduler"] = scheduler
    if extra:
        params["extra"] = extra
    if getattr(args, "timing_out", None):
        params["timing"] = TimingCollector()
    if getattr(args, "metrics_out", None):
        PROFILER.enable()
    params.update(overrides)
    return SimulationConfig(**params)


def _cmd_erb(args: argparse.Namespace) -> int:
    config = _config_for(args)
    tracer = config.tracer
    behaviors = None
    if args.chain:
        behaviors = chain_delay_strategy(
            list(range(args.chain)), honest_target=args.chain
        )
        if args.initiator >= args.chain:
            print("note: --chain forces the initiator to node 0", file=sys.stderr)
        args.initiator = 0
    result = run_erb(
        config,
        initiator=args.initiator,
        message=args.message.encode("utf-8"),
        behaviors=behaviors,
    )
    _finish_trace(tracer, args)
    _finish_obs(config, args, result)
    _print_result(result, f"ERB broadcast over N={args.n}")
    return 0


def _cmd_pb_erb(args: argparse.Namespace) -> int:
    t = args.t if args.t >= 0 else args.n // 4
    config = _config_for(args, t=t)
    tracer = config.tracer
    pb = PbErbConfig(
        fanout=args.fanout,
        echo_sample=args.echo_sample,
        threshold=args.threshold,
        epsilon=args.epsilon,
    )
    result = run_pb_erb(
        config,
        initiator=args.initiator,
        message=args.message.encode("utf-8"),
        pb=pb,
    )
    _finish_trace(tracer, args)
    _finish_obs(config, args, result)
    _print_result(result, f"pb-ERB broadcast over N={args.n}")
    print(
        f"  fanout/echo/quorum: g={pb.resolved_fanout(args.n)} "
        f"e={pb.resolved_echo_sample(args.n)} "
        f"q={pb.echo_quorum(args.n)} "
        f"(analytic failure bound {pb.failure_bound(args.n, t):.3g} "
        f"at f=t={t})"
    )
    return 0


def _cmd_erng(args: argparse.Namespace) -> int:
    config = _config_for(args)
    tracer = config.tracer
    result = run_erng(config)
    _finish_trace(tracer, args)
    _finish_obs(config, args, result)
    _print_result(result, f"unoptimized ERNG over N={args.n}")
    return 0


def _cmd_erng_opt(args: argparse.Namespace) -> int:
    t = args.t if args.t >= 0 else args.n // 3
    config = _config_for(args, t=t)
    tracer = config.tracer
    cluster = ClusterConfig(
        mode=args.mode,
        gamma=args.gamma,
    )
    result = run_optimized_erng(config, cluster=cluster)
    _finish_trace(tracer, args)
    _finish_obs(config, args, result)
    _print_result(result, f"optimized ERNG over N={args.n} ({args.mode})")
    return 0


def _cmd_agreement(args: argparse.Namespace) -> int:
    inputs_list = args.inputs.split(",")
    if len(inputs_list) != args.n:
        print(
            f"error: expected {args.n} comma-separated inputs, "
            f"got {len(inputs_list)}",
            file=sys.stderr,
        )
        return 2
    config = _config_for(args)
    tracer = config.tracer
    result = run_byzantine_agreement(
        config, {i: value for i, value in enumerate(inputs_list)}
    )
    _finish_trace(tracer, args)
    _finish_obs(config, args, result)
    _print_result(result, f"byzantine agreement over N={args.n}")
    return 0


def _cmd_beacon(args: argparse.Namespace) -> int:
    if args.pipeline and args.optimized:
        print(
            "error: --pipeline requires the unoptimized backend "
            "(the optimized protocol's rounds are seed-locked); "
            "session reuse still applies without --pipeline",
            file=sys.stderr,
        )
        return 2
    tracer = _tracer_for(args)
    timing = TimingCollector() if getattr(args, "timing_out", None) else None
    if getattr(args, "metrics_out", None):
        PROFILER.enable()
    extra = {}
    data_plane = getattr(args, "data_plane", "auto")
    if data_plane != "auto":
        extra["parallel_data_plane"] = data_plane
    scheduler = getattr(args, "scheduler", "auto")
    if scheduler != "auto":
        extra["scheduler"] = scheduler
    # All epochs run on one persistent EngineSession, so the obs flags
    # scope over the whole service run: one trace, one timing collector
    # accumulating per-epoch start_run/end_run records, one metrics
    # registry — and with workers > 1 the crew forks exactly once.
    result = None
    t0 = perf_counter()
    if args.t < 0 and args.optimized:
        # Mirror the erng-opt command: the optimized backend needs the
        # t <= N/3 supermajority, not the ERB default (N-1)/2.
        args.t = args.n // 3
    with RandomBeacon(
        n=args.n, t=args.t, seed=args.seed, optimized=args.optimized,
        session=True, workers=getattr(args, "workers", 1),
        extra=extra, tracer=tracer, timing=timing,
    ) as beacon:
        if args.pipeline:
            records = beacon.run_pipelined(args.epochs)
        else:
            records = [beacon.next_beacon() for _ in range(args.epochs)]
        result = beacon.last_result
        for record in records:
            print(
                f"epoch {record.epoch}: {record.value:#034x}  "
                f"digest {record.digest.hex()[:16]}..."
            )
        wall = perf_counter() - t0
        if args.pipeline and result is not None:
            overlapped = sum(
                1 for s in beacon.pipeline_stats
                if s["overlaps_prev_ack_wave"]
            )
            print(
                f"pipelined: {result.rounds_executed} engine rounds for "
                f"{args.epochs} epochs; {overlapped} epoch hand-offs "
                "staged inside the previous epoch's ACK-wave round"
            )
        if args.epochs and wall > 0:
            print(f"throughput: {args.epochs / wall:.1f} epochs/s "
                  f"({wall * 1e3 / args.epochs:.2f} ms/epoch)")
    print(f"chain verifies: {RandomBeacon.verify_chain(beacon.log)}")
    _finish_trace(tracer, args)
    _finish_obs(
        SimulationConfig(n=args.n, t=args.t, timing=timing), args, result
    )
    return 0


def _parse_peer_book(spec: str) -> dict:
    """Parse ``"1=127.0.0.1:9001,2=127.0.0.1:9002"`` into an address
    book ``{node_id: (host, port)}``."""
    book = {}
    for entry in spec.split(","):
        entry = entry.strip()
        if not entry:
            continue
        try:
            pid, addr = entry.split("=", 1)
            host, port = addr.rsplit(":", 1)
            book[int(pid)] = (host, int(port))
        except ValueError:
            raise SystemExit(
                f"error: bad --peers entry {entry!r} "
                "(expected id=host:port)"
            )
    return book


def _cmd_node(args: argparse.Namespace) -> int:
    from repro.net.wire import WireNodeConfig, run_node_daemon

    if args.config:
        try:
            with open(args.config, "r", encoding="utf-8") as fh:
                cfg = WireNodeConfig.from_json(fh.read())
        except OSError as exc:
            raise SystemExit(f"error: cannot read {args.config}: {exc}")
    else:
        if args.node_id is None:
            raise SystemExit("error: --node-id is required without --config")
        cfg = WireNodeConfig(
            node_id=args.node_id,
            n=args.n,
            t=args.t,
            seed=args.seed,
            protocol=args.protocol,
            listen_host=args.listen_host,
            listen_port=args.listen_port,
            peers=_parse_peer_book(args.peers or ""),
            security=args.security,
            initiator=args.initiator,
            message=args.message.encode("utf-8"),
            epochs=args.epochs,
            round_timeout_s=args.round_timeout,
        )
    report = run_node_daemon(cfg)
    # The report is the daemon's machine-readable contract: one JSON
    # object on stdout (the cluster launcher and tests parse it).
    json.dump(report.to_json_dict(), sys.stdout)
    print()
    return 1 if report.crashed else 0


def _cmd_cluster(args: argparse.Namespace) -> int:
    from repro.net.wire import (
        allocate_loopback_ports,
        calibrate_from_results,
        cluster_configs,
        run_cluster,
        run_cluster_processes,
    )

    ports = allocate_loopback_ports(args.n) if args.processes else None
    configs = cluster_configs(
        args.n,
        args.protocol,
        t=args.t,
        seed=args.seed,
        security=args.security,
        initiator=args.initiator,
        message=args.message.encode("utf-8"),
        epochs=args.epochs,
        round_timeout_s=args.round_timeout,
        ports=ports,
    )
    if args.processes:
        result = run_cluster_processes(configs)
    else:
        result = run_cluster(configs)
    values = sorted({repr(v) for v in result.outputs.values()})
    mode = "multi-process" if args.processes else "in-process"
    total_bytes = sum(
        r.stats.total_bytes_sent for r in result.reports.values()
    )
    print(f"{args.protocol} over real TCP (N={args.n}, {mode} loopback):")
    print(f"  accepted value(s): {', '.join(values) or 'none'}")
    print(f"  decided:           {len(result.outputs)}/{args.n} nodes")
    print(f"  rounds:            {result.rounds_executed}")
    print(f"  wall clock:        {result.wall_seconds:.3f} s")
    if total_bytes:
        print(f"  wire traffic:      {total_bytes} bytes sent")
    print(f"  ejected/halted:    {result.halted or 'none'}")
    if args.protocol == "beacon":
        for record in result.records:
            print(
                f"  epoch {record.epoch}: value={record.value} "
                f"digest={record.digest.hex()[:16]}…"
            )
    if args.calibrate:
        fit = calibrate_from_results([result])
        print("calibration fit (wall = latency + bytes/bandwidth):")
        print(f"  latency:         {fit.latency_s * 1e3:.3f} ms")
        if fit.bandwidth_bytes_per_s is not None:
            print(
                f"  bandwidth:       "
                f"{fit.bandwidth_bytes_per_s / 1e6:.2f} MB/s"
            )
        else:
            print("  bandwidth:       unidentifiable "
                  "(byte counts not varied enough)")
        print(f"  RMS residual:    {fit.residual_s * 1e3:.3f} ms "
              f"over {fit.samples} rounds")
        print(f"  suggested --delta for the simulator: "
              f"{fit.suggested_delta:.6f}")
    if args.json_out:
        payload = {
            "machine": machine_stamp(transport="tcp"),
            "protocol": args.protocol,
            "n": args.n,
            "mode": mode,
            "rounds_executed": result.rounds_executed,
            "wall_seconds": result.wall_seconds,
            "reports": {
                str(nid): report.to_json_dict()
                for nid, report in sorted(result.reports.items())
            },
        }
        if args.calibrate:
            payload["calibration"] = fit.to_json_dict()
        try:
            with open(args.json_out, "w", encoding="utf-8") as fh:
                json.dump(payload, fh, indent=1)
                fh.write("\n")
        except OSError as exc:
            print(f"error: cannot write {args.json_out}: {exc}",
                  file=sys.stderr)
            return 1
        print(f"cluster report written to {args.json_out}", file=sys.stderr)
    return 0 if len(result.outputs) == args.n - len(result.halted) else 1


def _cmd_churn(args: argparse.Namespace) -> int:
    byzantine = [int(x) for x in args.byzantine.split(",")] if args.byzantine else []
    config = _config_for(args)
    tracer = config.tracer
    driver = ChurnDriver(
        config, byzantine=byzantine, misbehave_p=args.p, seed=args.seed
    )
    report = driver.run(args.instances)
    _finish_trace(tracer, args)
    _finish_obs(config, args, None)
    print(f"live byzantine per instance: {report.live_byzantine}")
    print(f"ejection order:              {report.ejected_order}")
    print(
        f"agreement held in            {report.agreements_held}/"
        f"{report.instances} instances"
    )
    sanitized = report.sanitized_at
    print(
        "network sanitized at instance "
        + (str(sanitized) if sanitized >= 0 else "(not yet)")
    )
    return 0


def _cmd_campaign(args: argparse.Namespace) -> int:
    from repro.campaign import build_grid, run_campaign, summarize_report
    from repro.campaign.runner import (
        CHURN_PATTERNS,
        STRATEGIES,
        run_pb_erb_sweep,
        summarize_pb_erb_sweep,
    )
    from repro.campaign.spec import PROTOCOLS

    if args.pb_erb_sweep:
        cells = run_pb_erb_sweep(
            n=args.pb_erb_n,
            seeds=args.seeds,
            epsilon=args.epsilon,
            master_seed=args.seed,
        )
        print(summarize_pb_erb_sweep(cells))
        return 0 if all(cell.passed for cell in cells) else 1

    protocols = args.protocols.split(",")
    unknown = sorted(set(protocols) - set(PROTOCOLS))
    if unknown:
        print(f"error: unknown protocol(s) {unknown}", file=sys.stderr)
        return 2
    strategies = args.strategies.split(",")
    unknown = sorted(set(strategies) - set(STRATEGIES))
    if unknown:
        print(
            f"error: unknown strategy(s) {unknown}; "
            f"known: {', '.join(sorted(STRATEGIES))}",
            file=sys.stderr,
        )
        return 2
    churns = args.churn.split(",")
    unknown = sorted(set(churns) - set(CHURN_PATTERNS))
    if unknown:
        print(
            f"error: unknown churn pattern(s) {unknown}; "
            f"known: {', '.join(sorted(CHURN_PATTERNS))}",
            file=sys.stderr,
        )
        return 2

    inject = None
    if args.inject is not None:
        # Test-only violation hook (see repro.campaign.spec): corrupt the
        # named node's output after every run so the catch → shrink →
        # replay pipeline can be demonstrated end-to-end.
        inject = {
            "kind": "corrupt_output",
            "node": args.inject,
            "value": "injected-violation",
        }

    specs = build_grid(
        protocols=protocols,
        sizes=[int(x) for x in args.sizes.split(",")],
        strategies=strategies,
        churns=churns,
        seeds=list(range(args.seeds)),
        master_seed=args.seed,
        channel=args.channel,
        inject=inject,
    )
    tracer = _tracer_for(args)
    report = run_campaign(
        specs,
        tracer=tracer if tracer is not None else Tracer(),
        shrink_failures=not args.no_shrink,
        artifact_dir=args.out,
        cross_check=args.cross_check,
    )
    _finish_trace(tracer, args)
    print(summarize_report(report))
    return 0 if report.passed else 1


def _cmd_replay(args: argparse.Namespace) -> int:
    from repro.campaign import replay_artifact
    from repro.common.errors import ConfigurationError

    try:
        outcome = replay_artifact(args.artifact)
    except OSError as exc:
        print(f"error: cannot read artifact: {exc}", file=sys.stderr)
        return 2
    except (ValueError, KeyError, TypeError, ConfigurationError) as exc:
        print(
            f"error: {args.artifact} is not a campaign artifact: {exc}",
            file=sys.stderr,
        )
        return 2
    print(outcome.summary())
    return 0 if outcome.ok else 1


def _cmd_inspect(args: argparse.Namespace) -> int:
    try:
        events = read_trace(args.trace)
    except OSError as exc:
        print(f"error: cannot read trace: {exc}", file=sys.stderr)
        return 2
    except (ValueError, KeyError, TypeError) as exc:
        print(f"error: {args.trace} is not a trace file: {exc}", file=sys.stderr)
        return 2
    print(render_timeline(events))
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.obs.report import render_report

    try:
        text = render_report(
            args.path,
            html_out=args.html,
            flame_out=args.flame,
            threshold=args.threshold,
        )
    except OSError as exc:
        print(f"error: cannot read {args.path}: {exc}", file=sys.stderr)
        return 2
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(text)
    if args.html:
        print(f"HTML report written to {args.html}", file=sys.stderr)
    if args.flame:
        print(
            f"collapsed stacks written to {args.flame} "
            "(open with speedscope or flamegraph.pl)",
            file=sys.stderr,
        )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Robust P2P primitives using (simulated) SGX enclaves — "
            "ICDCS 2020 reproduction"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p: argparse.ArgumentParser, default_n: int = 16) -> None:
        p.add_argument("--n", type=int, default=default_n, help="network size")
        p.add_argument(
            "--t", type=int, default=-1,
            help="byzantine bound (default: protocol maximum)",
        )
        p.add_argument("--seed", type=int, default=0, help="simulation seed")
        p.add_argument(
            "--workers", type=int, default=1, metavar="P",
            help="shard node execution across P worker processes "
            "(results are byte-identical to --workers 1)",
        )
        p.add_argument(
            "--data-plane", choices=("auto", "shm", "pickle"),
            default="auto",
            help="coordinator/worker transport for --workers > 1: "
            "shared-memory rings, pickle pipes, or pick automatically "
            "(results are byte-identical either way)",
        )
        p.add_argument(
            "--scheduler", choices=("auto", "dense", "sparse"),
            default="auto",
            help="round scheduling: visit every node each round (dense), "
            "only active nodes (sparse; requires sparse-aware programs), "
            "or pick automatically (results are byte-identical either "
            "way)",
        )
        p.add_argument(
            "--profile-out", default=None, metavar="PATH",
            help="cProfile the run and dump pstats data to PATH "
            "(inspect with `python -m pstats PATH`)",
        )
        p.add_argument(
            "--trace-out", default=None, metavar="PATH",
            help="write a JSONL trace of the run (inspect with "
            "`python -m repro inspect PATH`)",
        )
        p.add_argument(
            "--timing-out", default=None, metavar="PATH",
            help="attribute per-round wall clock to engine phases and "
            "write the breakdown as JSON (render with "
            "`python -m repro report PATH`)",
        )
        p.add_argument(
            "--metrics-out", default=None, metavar="PATH",
            help="enable the channel/engine profiler and write its "
            "counters and histograms as JSON",
        )
        p.add_argument(
            "-v", "--verbose", action="count", default=0,
            help="-v: protocol decisions; -vv: per-round engine detail",
        )

    p_erb = sub.add_parser("erb", help="run one reliable broadcast")
    common(p_erb)
    p_erb.add_argument("--initiator", type=int, default=0)
    p_erb.add_argument("--message", default="hello")
    p_erb.add_argument(
        "--chain", type=int, default=0,
        help="byzantine delay-chain length (Fig. 2c worst case)",
    )
    p_erb.set_defaults(func=_cmd_erb)

    p_pb = sub.add_parser(
        "pb-erb",
        help="run one sample-based probabilistic broadcast "
        "(O(N log N) messages, ε-secure)",
    )
    common(p_pb, default_n=128)
    p_pb.add_argument("--initiator", type=int, default=0)
    p_pb.add_argument("--message", default="hello")
    p_pb.add_argument(
        "--fanout", type=int, default=None, metavar="G",
        help="gossip sample size (default 3·⌈log2 N⌉)",
    )
    p_pb.add_argument(
        "--echo-sample", type=int, default=None, metavar="E",
        help="echo-vote sample size (default: fanout)",
    )
    p_pb.add_argument(
        "--threshold", type=float, default=0.5,
        help="accept quorum as a fraction of the echo sample (τ)",
    )
    p_pb.add_argument(
        "--epsilon", type=float, default=0.05,
        help="failure-probability budget the knobs are tuned against",
    )
    p_pb.set_defaults(func=_cmd_pb_erb)

    p_erng = sub.add_parser("erng", help="run the unoptimized ERNG")
    common(p_erng)
    p_erng.set_defaults(func=_cmd_erng)

    p_opt = sub.add_parser("erng-opt", help="run the optimized ERNG")
    common(p_opt, default_n=120)
    p_opt.add_argument(
        "--mode", choices=["sampled", "fixed_fraction"], default="sampled"
    )
    p_opt.add_argument("--gamma", type=int, default=None)
    p_opt.set_defaults(func=_cmd_erng_opt)

    p_ba = sub.add_parser("agreement", help="byzantine agreement over inputs")
    common(p_ba, default_n=9)
    p_ba.add_argument(
        "--inputs", required=True,
        help="comma-separated input values, one per node",
    )
    p_ba.set_defaults(func=_cmd_agreement)

    p_beacon = sub.add_parser("beacon", help="run a chained random beacon")
    common(p_beacon, default_n=9)
    p_beacon.add_argument("--epochs", type=int, default=3)
    p_beacon.add_argument(
        "--pipeline", action="store_true",
        help="run all epochs as one pipelined engine run (epoch e+1's "
             "dissemination staged inside epoch e's final ACK-wave round)",
    )
    p_beacon.add_argument(
        "--optimized", action="store_true",
        help="use the optimized ERNG backend per epoch (session mode)",
    )
    p_beacon.set_defaults(func=_cmd_beacon)

    p_churn = sub.add_parser(
        "churn", help="repeated instances sanitize the network (Appendix D)"
    )
    common(p_churn, default_n=17)
    p_churn.add_argument(
        "--byzantine", default="", help="comma-separated byzantine node ids"
    )
    p_churn.add_argument(
        "--p", type=float, default=0.3,
        help="per-instance misbehaviour probability",
    )
    p_churn.add_argument("--instances", type=int, default=20)
    p_churn.set_defaults(func=_cmd_churn)

    def wire_common(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--t", type=int, default=-1,
            help="byzantine bound (default: protocol maximum)",
        )
        p.add_argument("--seed", type=int, default=0, help="shared seed")
        p.add_argument(
            "--protocol", choices=("erb", "erng", "pb-erb", "beacon"),
            default="erb", help="which protocol the cluster runs",
        )
        p.add_argument(
            "--security", choices=("modeled", "full"), default="modeled",
            help="modeled channels or full AEAD-sealed envelopes on "
            "the wire",
        )
        p.add_argument("--initiator", type=int, default=0)
        p.add_argument("--message", default="hello")
        p.add_argument(
            "--epochs", type=int, default=1,
            help="beacon epochs to chain (beacon protocol only)",
        )
        p.add_argument(
            "--round-timeout", type=float, default=10.0, metavar="S",
            help="per-barrier timeout before a silent peer is ejected",
        )
        p.add_argument(
            "-v", "--verbose", action="count", default=0,
            help="-v: wire-level INFO; -vv: per-frame DEBUG",
        )

    p_node = sub.add_parser(
        "node",
        help="host one node's enclave as a long-running TCP daemon",
    )
    p_node.add_argument(
        "--config", default=None, metavar="PATH",
        help="JSON node config (overrides all other flags)",
    )
    p_node.add_argument("--node-id", type=int, default=None)
    p_node.add_argument("--n", type=int, default=5, help="network size")
    p_node.add_argument(
        "--listen-host", default="127.0.0.1",
        help="address to bind the daemon's listener on",
    )
    p_node.add_argument(
        "--listen-port", type=int, default=0,
        help="listening port (0: let the OS pick)",
    )
    p_node.add_argument(
        "--peers", default="", metavar="BOOK",
        help="peer address book: 1=127.0.0.1:9001,2=127.0.0.1:9002,...",
    )
    wire_common(p_node)
    p_node.set_defaults(func=_cmd_node)

    p_cluster = sub.add_parser(
        "cluster",
        help="spin up an N-node loopback cluster over real TCP sockets",
    )
    p_cluster.add_argument("--n", type=int, default=5, help="cluster size")
    p_cluster.add_argument(
        "--processes", action="store_true",
        help="one OS process per node daemon (default: one event loop)",
    )
    p_cluster.add_argument(
        "--calibrate", action="store_true",
        help="fit the simulator's latency/bandwidth round model against "
        "the measured rounds and print the fit + residual",
    )
    p_cluster.add_argument(
        "--json-out", default=None, metavar="PATH",
        help="write per-node reports (stamped transport=\"tcp\") as JSON",
    )
    wire_common(p_cluster)
    p_cluster.set_defaults(func=_cmd_cluster)

    p_inspect = sub.add_parser(
        "inspect", help="render a --trace-out JSONL file as a round timeline"
    )
    p_inspect.add_argument("trace", help="path to a trace.jsonl file")
    p_inspect.set_defaults(func=_cmd_inspect)

    p_report = sub.add_parser(
        "report",
        help="render a --timing-out sidecar, timed trace, or BENCH_*.json "
        "history as a performance report",
    )
    p_report.add_argument(
        "path",
        help="a --timing-out JSON sidecar, a --trace-out JSONL file from "
        "a timed run, or a BENCH_*.json benchmark history",
    )
    p_report.add_argument(
        "--html", default=None, metavar="OUT",
        help="also write a self-contained HTML report",
    )
    p_report.add_argument(
        "--flame", default=None, metavar="OUT",
        help="also export collapsed stacks (speedscope / flamegraph "
        "input; timing inputs only)",
    )
    p_report.add_argument(
        "--threshold", type=float, default=0.15,
        help="bench-history regression threshold (default: %(default)s)",
    )
    p_report.set_defaults(func=_cmd_report)

    p_camp = sub.add_parser(
        "campaign",
        help="seeded fault-injection sweep checking the paper invariants",
        description=(
            "Sweep a (protocol, N, adversary strategy, churn pattern, seed) "
            "grid; after every run check agreement, validity, integrity, "
            "the termination bounds, sanitization and liveness, plus a "
            "cross-seed ERNG unbiasedness smoke test.  Failing cases are "
            "shrunk to a minimal reproducer and written to --out as "
            "replayable JSON (see `python -m repro replay`).  The adversary "
            "model behind the strategies is documented in docs/ADVERSARIES.md."
        ),
    )
    p_camp.add_argument(
        "--protocols", default="erb,erng,erng-opt",
        help="comma-separated subset of erb,erng,erng-opt,pb-erb",
    )
    p_camp.add_argument(
        "--sizes", default="5,8", metavar="N,N,...",
        help="comma-separated network sizes",
    )
    p_camp.add_argument(
        "--strategies", default="honest,omission,random,mute,rod,byzantine",
        help="comma-separated adversary strategies",
    )
    p_camp.add_argument(
        "--churn", default="none,intermittent,late",
        help="comma-separated fault activity windows",
    )
    p_camp.add_argument(
        "--seeds", type=int, default=2, metavar="K",
        help="seeds per grid cell (K distinct derived seeds)",
    )
    p_camp.add_argument("--seed", type=int, default=0, help="master seed")
    p_camp.add_argument(
        "--channel", choices=["full", "modeled", "none"], default="modeled"
    )
    p_camp.add_argument(
        "--out", default=None, metavar="DIR",
        help="directory for minimal-reproducer artifacts",
    )
    p_camp.add_argument(
        "--no-shrink", action="store_true",
        help="report failures without shrinking them",
    )
    p_camp.add_argument(
        "--cross-check", action="store_true",
        help="re-run every case with --workers 2 and require byte-identical "
        "results (exercises the parallel engine and its serial fallback)",
    )
    p_camp.add_argument(
        "--pb-erb-sweep", action="store_true",
        help="run the pb-erb ε-sweep preset instead of the grid: sweep the "
        "sample-size knob against omission+byzantine schedules and check "
        "the empirical agreement-failure rate against the configured ε",
    )
    p_camp.add_argument(
        "--pb-erb-n", type=int, default=64, metavar="N",
        help="network size for --pb-erb-sweep (default: %(default)s)",
    )
    p_camp.add_argument(
        "--epsilon", type=float, default=0.05,
        help="ε budget for --pb-erb-sweep (default: %(default)s)",
    )
    p_camp.add_argument(
        "--inject", type=int, default=None, metavar="NODE",
        help="TEST ONLY: corrupt NODE's output after every run to "
        "demonstrate the catch/shrink/replay pipeline",
    )
    p_camp.add_argument(
        "--trace-out", default=None, metavar="PATH",
        help="write per-case campaign events as JSONL (the sweep summary)",
    )
    p_camp.add_argument(
        "-v", "--verbose", action="count", default=0,
        help="-v: per-case progress; -vv: engine detail",
    )
    p_camp.set_defaults(func=_cmd_campaign)

    p_replay = sub.add_parser(
        "replay",
        help="re-run a campaign failure artifact and verify it reproduces",
    )
    p_replay.add_argument("artifact", help="path to a reproducer .json file")
    p_replay.set_defaults(func=_cmd_replay)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    _configure_logging(getattr(args, "verbose", 0))
    profile_out = getattr(args, "profile_out", None)
    try:
        if profile_out:
            import cProfile

            profiler = cProfile.Profile()
            try:
                return profiler.runcall(args.func, args)
            finally:
                profiler.dump_stats(profile_out)
                print(f"profile written to {profile_out}", file=sys.stderr)
        return args.func(args)
    except BrokenPipeError:  # e.g. `repro inspect ... | head`
        return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
