"""F3 — remote attestation with a simulated attestation service.

The paper's evaluation itself ran against a *simulated* Intel Attestation
Service (Section 6), and so do we: :class:`AttestationAuthority` holds a
Schnorr signing key (standing in for Intel's EPID group key), issues
quotes binding ``(measurement, report_data)``, and verifiers check both the
authority signature and that the measurement equals the program they
expect.  ``report_data`` carries the enclave's DH public value so the
channel-setup key exchange is authenticated end-to-end: a byzantine OS
cannot man-in-the-middle the exchange because it cannot produce a quote
over its own key with a valid measurement (enforcing P1 and P2).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import AttestationError
from repro.common.rng import DeterministicRNG
from repro.crypto.dh import MODP_768, DhGroup
from repro.crypto.schnorr import (
    SchnorrKeyPair,
    SchnorrSignature,
    schnorr_keygen,
    schnorr_verify,
)


@dataclass(frozen=True)
class Quote:
    """An attestation quote: measurement + report data + authority signature."""

    measurement: bytes
    report_data: bytes
    signature: SchnorrSignature

    def signed_material(self) -> bytes:
        return b"quote|" + self.measurement + b"|" + self.report_data


class AttestationAuthority:
    """Simulated IAS: issues and verifies quotes for the whole simulation."""

    def __init__(self, rng: DeterministicRNG, group: DhGroup = MODP_768) -> None:
        self._group = group
        self._keypair: SchnorrKeyPair = schnorr_keygen(
            rng.fork("attestation-authority"), group
        )

    @property
    def public_key(self) -> int:
        return self._keypair.public

    def issue_quote(
        self, measurement: bytes, report_data: bytes, rng: DeterministicRNG
    ) -> Quote:
        """Sign a quote over (measurement, report_data).

        In real SGX the quote is produced by the quoting enclave from an
        EREPORT; here issuing is modeled as a call to the authority, which
        only genuine enclaves can make (the OS layer has no handle to it).
        """
        draft = Quote(
            measurement=measurement,
            report_data=report_data,
            signature=SchnorrSignature(0, 0),
        )
        signature = self._keypair.sign(draft.signed_material(), rng)
        return Quote(
            measurement=measurement, report_data=report_data, signature=signature
        )

    def verify_quote(self, quote: Quote, expected_measurement: bytes) -> None:
        """Raise :class:`AttestationError` unless the quote is genuine and
        attests the expected program."""
        if quote.measurement != expected_measurement:
            raise AttestationError(
                "quote attests a different program "
                f"({quote.measurement.hex()[:16]} != "
                f"{expected_measurement.hex()[:16]})"
            )
        if not schnorr_verify(
            self._group,
            self._keypair.public,
            quote.signed_material(),
            quote.signature,
        ):
            raise AttestationError("quote signature verification failed")
