"""Program measurement — the simulated MRENCLAVE.

SGX identifies enclave code by a hash of its initial memory contents.  Here
a program's measurement is the hash of its declared name/version material
plus, when available, the source code of its class — so editing a protocol
implementation changes its measurement, and a peer attesting for the old
measurement will reject a quote for the new one, exactly like re-building
an enclave changes MRENCLAVE.
"""

from __future__ import annotations

import inspect

from repro.crypto.hashing import hash_bytes


def measure_program(program) -> bytes:
    """Return the 32-byte measurement of an :class:`EnclaveProgram` instance."""
    material = program.measurement_material()
    try:
        source = inspect.getsource(type(program)).encode("utf-8")
    except (OSError, TypeError):  # interactively-defined classes
        source = type(program).__qualname__.encode("utf-8")
    return hash_bytes(material + b"\x00" + source, domain="mrenclave")
