"""Program measurement — the simulated MRENCLAVE.

SGX identifies enclave code by a hash of its initial memory contents.  Here
a program's measurement is the hash of its declared name/version material
plus, when available, the source code of its class — so editing a protocol
implementation changes its measurement, and a peer attesting for the old
measurement will reject a quote for the new one, exactly like re-building
an enclave changes MRENCLAVE.
"""

from __future__ import annotations

import inspect
from functools import lru_cache

from repro.crypto.hashing import hash_bytes


@lru_cache(maxsize=256)
def _class_source(cls: type) -> bytes:
    """Source bytes of a program class, fetched once per class.

    ``inspect.getsource`` re-reads and re-parses the defining module on
    every call; a network of N same-program enclaves only needs it once
    (a class object's source cannot change within a process, so caching
    is semantics-preserving).
    """
    try:
        return inspect.getsource(cls).encode("utf-8")
    except (OSError, TypeError):  # interactively-defined classes
        return cls.__qualname__.encode("utf-8")


def measure_program(program) -> bytes:
    """Return the 32-byte measurement of an :class:`EnclaveProgram` instance."""
    material = program.measurement_material()
    return hash_bytes(
        material + b"\x00" + _class_source(type(program)), domain="mrenclave"
    )
