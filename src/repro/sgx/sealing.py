"""Data sealing — persistence bound to the enclave identity.

SGX lets an enclave encrypt data under a key derived from its measurement
so that only the *same program* on the *same platform* can recover it.  The
load-balancer application (Appendix H) uses this to pre-generate random
numbers offline.  The seal key is derived from (platform secret,
measurement) through HKDF; a different program or platform derives a
different key and unsealing fails with an integrity error.
"""

from __future__ import annotations

from repro.common.errors import IntegrityError
from repro.common.rng import DeterministicRNG
from repro.crypto.aead import AEAD, AeadKey
from repro.crypto.kdf import hkdf
from repro.crypto.mac import KEY_SIZE


def _seal_key(platform_secret: bytes, measurement: bytes) -> AeadKey:
    material = hkdf(
        platform_secret + measurement, info=b"sgx-seal", length=2 * KEY_SIZE
    )
    return AeadKey(enc_key=material[:KEY_SIZE], mac_key=material[KEY_SIZE:])


def seal_data(
    platform_secret: bytes,
    measurement: bytes,
    plaintext: bytes,
    rng: DeterministicRNG,
) -> bytes:
    """Seal ``plaintext`` to (platform, program)."""
    box = AEAD(_seal_key(platform_secret, measurement))
    return box.seal(plaintext, rng, associated_data=b"sealed-blob")


def unseal_data(
    platform_secret: bytes, measurement: bytes, sealed: bytes
) -> bytes:
    """Recover sealed data; raises :class:`IntegrityError` for a wrong
    platform/program pair or tampered blob."""
    box = AEAD(_seal_key(platform_secret, measurement))
    try:
        return box.open(sealed, associated_data=b"sealed-blob")
    except IntegrityError as exc:
        raise IntegrityError(f"unsealing failed: {exc}") from exc
