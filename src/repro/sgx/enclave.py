"""F1 — the enclave container.

An :class:`Enclave` is the trusted half of a peer (Fig. 1 of the paper):
it owns the protocol program, the RDRAND stream, the trusted clock, and —
once channels are established — the per-peer channel keys.  The untrusted
OS half never reads this state; it only moves opaque wire bytes around.

Halt-on-divergence (P4) is enforced here: once :meth:`halt` runs, the
enclave's state is ``HALTED`` and every further invocation raises
:class:`EnclaveHaltedError`.  Because channel keys, sequence numbers and
round position live only inside enclave memory, a relaunched enclave
cannot rejoin an ongoing execution (Section 3.1, P6): it would need the
session state that was destroyed with the halt.
"""

from __future__ import annotations

import enum
from typing import Optional

from repro.common.errors import EnclaveHaltedError
from repro.common.rng import DeterministicRNG
from repro.sgx.attestation import AttestationAuthority, Quote
from repro.sgx.measurement import measure_program
from repro.sgx.program import EnclaveProgram
from repro.sgx.rdrand import RdRand
from repro.sgx.trusted_time import SimulationClock, TrustedClock


class EnclaveState(enum.Enum):
    RUNNING = "running"
    HALTED = "halted"


class Enclave:
    """The trusted entity of one peer."""

    def __init__(
        self,
        node_id: int,
        program: EnclaveProgram,
        master_rng: DeterministicRNG,
        clock_source: SimulationClock,
        authority: Optional[AttestationAuthority] = None,
    ) -> None:
        self.node_id = node_id
        self.program = program
        self.state = EnclaveState.RUNNING
        self.rdrand = RdRand(master_rng, node_id)
        self.clock = TrustedClock(clock_source)
        self.measurement = measure_program(program)
        self._authority = authority
        self.halted_round: Optional[int] = None

    # ---- lifecycle -----------------------------------------------------
    @property
    def halted(self) -> bool:
        return self.state is EnclaveState.HALTED

    def guard(self) -> None:
        """Refuse any operation once the enclave halted (sticky ⊥ state)."""
        if self.halted:
            raise EnclaveHaltedError(
                f"enclave {self.node_id} halted in round {self.halted_round}"
            )

    def halt(self, rnd: Optional[int] = None) -> None:
        """Execute Halt(st): set the state to ⊥ permanently (P4)."""
        if not self.halted:
            self.state = EnclaveState.HALTED
            self.halted_round = rnd

    def relaunch(
        self, program: EnclaveProgram, master_rng: DeterministicRNG
    ) -> None:
        """Start a fresh execution in this enclave container.

        P6 forbids a halted enclave *rejoining an ongoing execution* —
        the session state died with the halt.  A relaunch is the other,
        legitimate lifecycle: the container boots a new program for a
        **new** protocol instance, with a fresh RDRAND fork, a fresh
        measurement and a reset clock reference, exactly as a relaunched
        enclave joining the next instance of a long-lived service would.
        Used by :meth:`repro.net.simulator.SynchronousNetwork.\
begin_session_run`.
        """
        self.program = program
        self.state = EnclaveState.RUNNING
        self.halted_round = None
        self.rdrand = RdRand(master_rng, self.node_id)
        self.clock.reset_reference()
        self.measurement = measure_program(program)

    # ---- attestation (F3) ----------------------------------------------
    def quote(self, report_data: bytes) -> Quote:
        """Produce an attestation quote binding ``report_data`` to this
        enclave's measurement."""
        self.guard()
        if self._authority is None:
            raise EnclaveHaltedError(
                "no attestation authority configured for this enclave"
            )
        return self._authority.issue_quote(
            self.measurement, report_data, self.rdrand.rng()
        )

    def verify_peer_quote(self, quote: Quote, expected_measurement: bytes) -> None:
        """Check a peer's quote before trusting its channel key (P1)."""
        self.guard()
        if self._authority is None:
            raise EnclaveHaltedError(
                "no attestation authority configured for this enclave"
            )
        self._authority.verify_quote(quote, expected_measurement)
