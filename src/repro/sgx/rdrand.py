"""F2 — unbiased hardware randomness (``sgx_read_rand`` / RDRAND).

Each enclave owns one :class:`RdRand` stream, forked off the simulation's
master seed by the enclave's identity.  The stream's internal state is
never handed to OS behaviours, which models the paper's guarantee that the
OS can neither observe nor bias the hardware source.  Determinism per seed
makes runs reproducible; independence per fork label means an adversary
cannot correlate two enclaves' draws.
"""

from __future__ import annotations

from repro.common.rng import DeterministicRNG


class RdRand:
    """Per-enclave unbiased random source."""

    def __init__(self, master: DeterministicRNG, enclave_label: object) -> None:
        self._rng = master.fork(("rdrand", enclave_label))

    def read_rand(self, nbytes: int) -> bytes:
        """The ``sgx_read_rand`` entry point: ``nbytes`` random bytes."""
        return self._rng.randbytes(nbytes)

    def random_bits(self, k: int) -> int:
        """Uniform integer in ``[0, 2**k)`` — the ``m <- {0,1}^k`` of Alg. 3."""
        return self._rng.randbits(k)

    def random_range(self, n: int) -> int:
        """Uniform integer in ``[0, n)`` — the cluster coin of Alg. 6."""
        return self._rng.randrange(n)

    def rng(self) -> DeterministicRNG:
        """Expose the stream for crypto operations inside the enclave."""
        return self._rng
