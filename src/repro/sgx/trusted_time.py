"""F4 — trusted elapsed time (``sgx_get_trusted_time``).

The simulator owns a global clock; each enclave sees it through a
:class:`TrustedClock` anchored at its own reference point.  The adversarial
OS layer is never given a handle to the clock, so it cannot rewind or skew
it — which is exactly what makes lockstep execution (P5) enforceable: the
enclave derives the current round number from elapsed time alone and stamps
or checks every message with it, and no software action of the OS can move
a byzantine node to a different round.
"""

from __future__ import annotations

from repro.common.errors import ProtocolError


class SimulationClock:
    """The simulator-owned time source all trusted clocks are slaved to."""

    def __init__(self) -> None:
        self._now = 0.0

    @property
    def now(self) -> float:
        return self._now

    def advance(self, seconds: float) -> None:
        if seconds < 0:
            raise ProtocolError("simulation time cannot move backwards")
        self._now += seconds


class TrustedClock:
    """An enclave's view of trusted elapsed time, relative to a reference."""

    def __init__(self, source: SimulationClock) -> None:
        self._source = source
        self._reference = source.now

    def reset_reference(self) -> None:
        """Re-anchor ('start the local clock', Algorithm 2's echo phase)."""
        self._reference = self._source.now

    def elapsed(self) -> float:
        """``sgx_get_trusted_time``: seconds since the reference point."""
        return self._source.now - self._reference

    def current_round(self, round_seconds: float) -> int:
        """1-based round implied by elapsed time (lockstep execution, P5)."""
        if round_seconds <= 0:
            raise ProtocolError("round duration must be positive")
        return int(self.elapsed() // round_seconds) + 1
