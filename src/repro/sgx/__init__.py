"""Simulated Intel SGX features F1-F4.

The paper relies on four hardware features; each has a software equivalent
here with the same protocol-visible contract (see DESIGN.md §2 for the
substitution argument):

* **F1 enclaved execution** — :class:`repro.sgx.enclave.Enclave`: protocol
  state lives inside the enclave object and the untrusted OS layer only
  interacts with it through the message interface; once halted, an enclave
  refuses all further work.
* **F2 unbiased randomness** — :class:`repro.sgx.rdrand.RdRand`: a
  per-enclave CSPRNG stream invisible to the OS layer.
* **F3 remote attestation** — :mod:`repro.sgx.attestation`: program
  measurements (MRENCLAVE) and quotes signed by a simulated attestation
  authority.
* **F4 trusted elapsed time** — :mod:`repro.sgx.trusted_time`: a monotonic
  clock slaved to the simulator, out of the adversary's reach.

:mod:`repro.sgx.program` additionally implements the formal program /
transcript model of Appendix A (Definitions A.1-A.3), which the tests use
to exercise the byzantine-to-ROD reduction.
"""

from repro.sgx.attestation import AttestationAuthority, Quote
from repro.sgx.enclave import Enclave, EnclaveState
from repro.sgx.measurement import measure_program
from repro.sgx.program import (
    EnclaveProgram,
    Instruction,
    Program,
    is_valid_transcript,
    run_program,
)
from repro.sgx.rdrand import RdRand
from repro.sgx.sealing import seal_data, unseal_data
from repro.sgx.trusted_time import TrustedClock

__all__ = [
    "AttestationAuthority",
    "Enclave",
    "EnclaveProgram",
    "EnclaveState",
    "Instruction",
    "Program",
    "Quote",
    "RdRand",
    "TrustedClock",
    "is_valid_transcript",
    "measure_program",
    "run_program",
    "seal_data",
    "unseal_data",
]
