"""The formal program model of Appendix A, plus the runtime program base class.

Two layers live here:

1. The **formal model** (Definitions A.1-A.3): a :class:`Program` is a
   sequence of :class:`Instruction` steps ``(st_{i+1}, m_{i+1}) =
   pi_i(st_i, m_i)``; running it yields a transcript whose validity is
   whether any state ever became ``BOTTOM``.  The test-suite uses this
   machinery to check halt-on-divergence (Definition A.7) and the
   reduction proofs' bookkeeping directly against the definitions.

2. The **runtime base class** :class:`EnclaveProgram`, which every
   protocol in :mod:`repro.core` and :mod:`repro.baselines` subclasses.
   An instance runs inside an :class:`repro.sgx.enclave.Enclave` and is
   driven by the synchronous simulator through four hooks
   (setup / round begin / message / round end).
"""

from __future__ import annotations

import logging
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

_PROTOCOL_LOG = logging.getLogger("repro.protocol")

#: The distinguished bottom state (the paper's ``⊥``).
BOTTOM = None

State = object
Message = object
StepFn = Callable[[State, Message], Tuple[State, Message]]


@dataclass(frozen=True)
class Instruction:
    """One instruction ``pi_i`` of a program (Definition A.1)."""

    name: str
    step: StepFn

    def __call__(self, state: State, message: Message) -> Tuple[State, Message]:
        # An instruction with BOTTOM input state always outputs BOTTOM
        # (Definition A.1's convention) — this is what makes Halt sticky.
        if state is BOTTOM:
            return BOTTOM, BOTTOM
        return self.step(state, message)


@dataclass(frozen=True)
class Program:
    """A finite sequence of instructions (Definition A.1)."""

    name: str
    instructions: Tuple[Instruction, ...]

    @staticmethod
    def from_steps(name: str, steps: Sequence[Tuple[str, StepFn]]) -> "Program":
        return Program(
            name=name,
            instructions=tuple(Instruction(n, fn) for n, fn in steps),
        )

    def __len__(self) -> int:
        return len(self.instructions)


def run_program(
    program: Program, initial_state: State, messages: Sequence[Message]
) -> List[Tuple[State, Message]]:
    """Execute ``program`` and return its transcript (Definition A.2).

    The transcript is the list of ``(st_{i+1}, m_{i+1})`` outputs, one per
    instruction.  ``messages`` supplies the per-instruction inputs ``m_i``.
    """
    if len(messages) != len(program):
        raise ValueError(
            f"program {program.name} has {len(program)} instructions "
            f"but got {len(messages)} input messages"
        )
    transcript: List[Tuple[State, Message]] = []
    state = initial_state
    for instruction, incoming in zip(program.instructions, messages):
        state, outgoing = instruction(state, incoming)
        transcript.append((state, outgoing))
    return transcript


def is_valid_transcript(transcript: Sequence[Tuple[State, Message]]) -> bool:
    """Definition A.3: valid iff no intermediate state is ``⊥``."""
    return all(state is not BOTTOM for state, _ in transcript)


class EnclaveProgram:
    """Base class for protocol logic executed inside an enclave (F1).

    Subclasses implement the four driver hooks.  The ``ctx`` argument is an
    :class:`repro.net.simulator.EnclaveContext` giving access to the
    enclave-visible world: node id, current round, RDRAND, multicast/send,
    and ``halt()``.  State kept on ``self`` is enclave-private — the
    simulator never exposes it to adversarial OS behaviours.

    ``PROGRAM_NAME`` and ``PROGRAM_VERSION`` feed the measurement
    (MRENCLAVE); two peers attest each other's measurements during channel
    setup, so running a *different* program (attack A1 via code swap) is
    caught before any protocol message flows.
    """

    PROGRAM_NAME = "enclave-program"
    PROGRAM_VERSION = "1"

    #: Opt-in to the engine's sparse round scheduler.  A program that sets
    #: this True promises that ``on_round_begin`` / ``on_round_end`` are
    #: exact no-ops (no state change, no RNG draw, no ``ctx`` call, no
    #: tracer emission) in every round ``r`` where the node received no
    #: delivery in ``r`` and ``r`` is earlier than the last wake round the
    #: program hinted via :meth:`sparse_wake_round`.  The engine may then
    #: skip those hook calls entirely; skipping must be observationally
    #: invisible (byte-identical results, ledgers and traces).  Programs
    #: that do not declare this stay on the always-visited list.
    #:
    #: The declaration covers the *declaring class's* hooks only: a
    #: subclass that overrides ``on_round_begin`` / ``on_round_end`` /
    #: ``sparse_wake_round`` without re-declaring ``SPARSE_AWARE = True``
    #: in its own body silently falls back to the always-visited list
    #: (see :func:`sparse_aware`) — new spontaneous activity in an
    #: override can never be skipped by an inherited promise.
    SPARSE_AWARE = False

    def __init__(self) -> None:
        self._output: object = _UNSET
        self._decided_round: Optional[int] = None

    # ---- driver hooks -------------------------------------------------
    def on_setup(self, ctx) -> None:
        """Called once before round 1, after channels are established."""

    def on_round_begin(self, ctx) -> None:
        """Called at the start of every round, before deliveries."""

    def on_message(self, ctx, sender: int, message) -> None:
        """Called once per valid delivered protocol message."""

    def on_round_end(self, ctx) -> None:
        """Called at the end of every round, after all deliveries."""

    def on_protocol_end(self, ctx) -> None:
        """Called once after the final round; undecided programs accept ⊥."""

    # ---- sparse scheduling (see docs/PERFORMANCE.md) -------------------
    def sparse_wake_round(self, rnd: int) -> Optional[int]:
        """The earliest round ``> rnd`` at which this program may act
        *spontaneously* (its begin/end hooks do something without a
        delivery having arrived), or ``None`` when the program is purely
        reactive from here on.

        Only consulted when :data:`SPARSE_AWARE` is True, after the node
        was visited or delivered to in round ``rnd``.  A delivery always
        re-wakes the node for that round's end hook regardless of the
        hint, so reactive work never needs to be declared — only
        round-number-triggered work (deadlines, per-round bookkeeping)
        does.  Returning an earlier round than necessary is safe (the
        hooks run and no-op); returning a *later* one breaks the run.
        """
        return rnd + 1

    # ---- output handling ----------------------------------------------
    @property
    def has_output(self) -> bool:
        return self._output is not _UNSET

    @property
    def output(self) -> object:
        if self._output is _UNSET:
            raise LookupError(
                f"{type(self).__name__} has not produced an output yet"
            )
        return self._output

    @property
    def decided_round(self) -> Optional[int]:
        """Round in which the output was accepted (for round-count stats)."""
        return self._decided_round

    def _accept(self, ctx, value: object) -> None:
        """Record the protocol output ('accept' in the paper's pseudocode).

        Emits a :class:`repro.obs.events.DecisionEvent` when the run is
        traced (``ctx`` is duck-typed: anything without a ``tracer``
        attribute — unit-test stubs, the formal model — skips emission).
        """
        if self._output is _UNSET:
            self._output = value
            self._decided_round = ctx.round
            node_id = getattr(ctx, "node_id", -1)
            tracer = getattr(ctx, "tracer", None)
            if tracer is not None and tracer.enabled:
                tracer.decision(
                    rnd=ctx.round,
                    node=node_id,
                    program=self.PROGRAM_NAME,
                    value=value,
                )
            _PROTOCOL_LOG.info(
                "node %s (%s) accepted in round %s: %.120r",
                node_id, self.PROGRAM_NAME, ctx.round, value,
            )

    def measurement_material(self) -> bytes:
        """Bytes fed into the MRENCLAVE measurement for this program."""
        return (
            f"{self.PROGRAM_NAME}:{self.PROGRAM_VERSION}".encode("utf-8")
        )


#: The scheduling-relevant hooks a SPARSE_AWARE declaration vouches for.
_SPARSE_HOOKS = ("on_round_begin", "on_round_end", "sparse_wake_round")


def sparse_aware(program: EnclaveProgram) -> bool:
    """Whether the sparse scheduler may trust ``program``'s declaration.

    True iff the most-derived class declaring ``SPARSE_AWARE`` sets it
    True *and* none of the round hooks it vouches for is overridden by a
    class more derived than that declaration.  This makes subclassing
    safe by default: a test double or variant protocol that overrides
    ``on_round_begin`` with new spontaneous behaviour (e.g. a scheduled
    voluntary halt) drops back to the always-visited list instead of
    inheriting a promise its override no longer keeps.
    """
    mro = type(program).__mro__
    declaring = next((k for k in mro if "SPARSE_AWARE" in vars(k)), None)
    if declaring is None or not vars(declaring)["SPARSE_AWARE"]:
        return False
    declaring_index = mro.index(declaring)
    for hook in _SPARSE_HOOKS:
        hook_cls = next((k for k in mro if hook in vars(k)), None)
        if hook_cls is not None and mro.index(hook_cls) < declaring_index:
            return False
    return True


class _Unset:
    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "<unset>"


_UNSET = _Unset()
