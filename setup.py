"""Shim for legacy editable installs (environments without the ``wheel``
package cannot build PEP 660 editable wheels; ``--no-use-pep517`` plus
this file restores ``setup.py develop``).  All real metadata lives in
pyproject.toml."""

from setuptools import setup

setup()
